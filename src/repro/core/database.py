"""The generated OCB database: schema + object graph.

:class:`OCBDatabase` is the in-memory result of the Fig. 2 generation
algorithm.  It owns the :class:`~repro.core.schema.Schema`, the objects
(:class:`OCBObject` — ``ClassPtr``, ``ORef``, ``BackRef``), and the helpers
the workload and the store need: conversion to
:class:`~repro.store.serializer.StoredObject` records, per-class catalogs,
reference-type lookups, and structural validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.parameters import DatabaseParameters
from repro.core.schema import Schema
from repro.errors import GenerationError
from repro.store.serializer import StoredObject, encoded_size

__all__ = ["OCBObject", "DatabaseStatistics", "OCBDatabase"]


@dataclass
class OCBObject:
    """One instance (Fig. 1's OBJECT): ClassPtr + ORef + BackRef."""

    oid: int
    cid: int
    oref: List[Optional[int]] = field(default_factory=list)
    back_refs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def live_references(self) -> List[int]:
        """Non-NIL forward references."""
        return [target for target in self.oref if target is not None]


@dataclass(frozen=True)
class DatabaseStatistics:
    """Structural summary of a generated database."""

    num_classes: int
    num_objects: int
    total_bytes: int
    average_object_bytes: float
    live_references: int
    nil_references: int
    average_fanout: float
    population_by_class: Tuple[Tuple[int, int], ...]

    def describe(self) -> str:
        """One paragraph, printable summary."""
        return (f"{self.num_objects} objects over {self.num_classes} classes, "
                f"{self.total_bytes} bytes "
                f"(avg {self.average_object_bytes:.1f} B/object), "
                f"{self.live_references} live refs "
                f"({self.nil_references} NIL), "
                f"avg fan-out {self.average_fanout:.2f}")


class OCBDatabase:
    """Schema plus instantiated object graph."""

    def __init__(self, schema: Schema, objects: Dict[int, OCBObject],
                 parameters: DatabaseParameters) -> None:
        self.schema = schema
        self.objects = objects
        self.parameters = parameters
        self._class_of: Dict[int, int] = {
            oid: obj.cid for oid, obj in objects.items()}

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #

    @property
    def num_objects(self) -> int:
        """NO as generated."""
        return len(self.objects)

    def get(self, oid: int) -> OCBObject:
        """Object *oid*."""
        try:
            return self.objects[oid]
        except KeyError:
            raise GenerationError(f"unknown object id {oid}") from None

    def class_of(self, oid: int) -> int:
        """Class id of object *oid* (the store catalog's view)."""
        try:
            return self._class_of[oid]
        except KeyError:
            raise GenerationError(f"unknown object id {oid}") from None

    def catalog(self) -> Dict[int, int]:
        """A copy of the oid -> cid catalog (what a real store would keep)."""
        return dict(self._class_of)

    def ref_type_of(self, oid: int, ref_index: int) -> int:
        """Reference type of slot *ref_index* of object *oid*'s class."""
        descriptor = self.schema.get(self.class_of(oid))
        try:
            return descriptor.tref[ref_index]
        except IndexError:
            raise GenerationError(
                f"object {oid} (class {descriptor.cid}) has no reference "
                f"slot {ref_index}") from None

    def tref_table(self) -> Dict[int, Tuple[int, ...]]:
        """cid -> reference-type tuple, for the workload's access context."""
        return {descriptor.cid: tuple(descriptor.tref)
                for descriptor in self.schema}

    def iter_objects(self) -> Iterator[OCBObject]:
        """Objects in oid order."""
        for oid in sorted(self.objects):
            yield self.objects[oid]

    # ------------------------------------------------------------------ #
    # Mutation (the generic-operations extension)
    # ------------------------------------------------------------------ #

    @property
    def next_oid(self) -> int:
        """The next unused object id."""
        return max(self.objects, default=0) + 1

    def add_object(self, obj: OCBObject) -> None:
        """Register a freshly created object (class iterator + catalog).

        The caller is responsible for the object's references and for the
        matching back references on its targets (see
        :mod:`repro.core.generic_ops`).
        """
        if obj.oid in self.objects:
            raise GenerationError(f"object id {obj.oid} already exists")
        descriptor = self.schema.get(obj.cid)
        if len(obj.oref) != descriptor.max_nref:
            raise GenerationError(
                f"object {obj.oid} needs {descriptor.max_nref} reference "
                f"slots for class {obj.cid}, got {len(obj.oref)}")
        self.objects[obj.oid] = obj
        self._class_of[obj.oid] = obj.cid
        descriptor.iterator.append(obj.oid)

    def remove_object(self, oid: int) -> OCBObject:
        """Unregister an object; returns it for final bookkeeping.

        References *to* and *from* the object must already have been
        detached by the caller.
        """
        obj = self.get(oid)
        del self.objects[oid]
        del self._class_of[oid]
        iterator = self.schema.get(obj.cid).iterator
        try:
            iterator.remove(oid)
        except ValueError:  # pragma: no cover - defensive
            raise GenerationError(
                f"object {oid} missing from class {obj.cid} iterator")
        return obj

    # ------------------------------------------------------------------ #
    # Store integration
    # ------------------------------------------------------------------ #

    def to_record(self, oid: int) -> StoredObject:
        """Serialize one object to its store record.

        ``filler`` is the class's ``InstanceSize``, so physical object
        sizes vary with the inheritance graph exactly as in the paper.
        The single source of record construction — bulk loads and
        content verifiers (the parallel coordinator's spot check of
        pre-existing shared storage) must agree byte for byte.
        """
        obj = self.get(oid)
        return StoredObject(
            oid=obj.oid,
            cid=obj.cid,
            refs=tuple(obj.oref),
            back_refs=tuple(obj.back_refs),
            filler=self.schema.get(obj.cid).instance_size)

    def to_records(self) -> Dict[int, StoredObject]:
        """Serialize the whole graph to store records (see :meth:`to_record`)."""
        return {oid: self.to_record(oid) for oid in self.objects}

    def load_into(self, store: object) -> int:
        """Bulk-load this database into *store* in oid order.

        The one loading idiom every coordinator uses (the kernel's
        ``Session.for_database``, the CLI's ``generate --backend``, the
        parallel coordinator), so load order and record construction
        can never drift between them.  Returns the storage units the
        engine reports.
        """
        records = self.to_records()
        return store.bulk_load(records.values(), order=sorted(records))  # type: ignore[attr-defined]

    def record_sizes(self) -> Dict[int, int]:
        """oid -> on-disk byte size (placement context input)."""
        sizes: Dict[int, int] = {}
        for obj in self.objects.values():
            instance_size = self.schema.get(obj.cid).instance_size
            sizes[obj.oid] = encoded_size(len(obj.oref), len(obj.back_refs),
                                          instance_size)
        return sizes

    def total_bytes(self) -> int:
        """Total serialized size of the database."""
        return sum(self.record_sizes().values())

    # ------------------------------------------------------------------ #
    # Validation & statistics
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check structural invariants; raise GenerationError on violation.

        * every forward reference targets an existing object whose class is
          the referencing slot's CRef class;
        * back references exactly mirror forward references;
        * every object is present in its class's iterator.
        """
        back_expected: Dict[int, List[Tuple[int, int]]] = {
            oid: [] for oid in self.objects}
        for obj in self.objects.values():
            descriptor = self.schema.get(obj.cid)
            if len(obj.oref) != descriptor.max_nref:
                raise GenerationError(
                    f"object {obj.oid} has {len(obj.oref)} reference slots, "
                    f"class {obj.cid} declares {descriptor.max_nref}")
            for index, target in enumerate(obj.oref):
                if target is None:
                    continue
                if target not in self.objects:
                    raise GenerationError(
                        f"object {obj.oid} references missing object {target}")
                expected_class = descriptor.cref[index]
                actual_class = self.class_of(target)
                if expected_class is not None and actual_class != expected_class:
                    raise GenerationError(
                        f"object {obj.oid} slot {index} should point to "
                        f"class {expected_class}, found class {actual_class}")
                back_expected[target].append((obj.oid, index))
        for oid, expected in back_expected.items():
            actual = sorted(self.objects[oid].back_refs)
            if sorted(expected) != actual:
                raise GenerationError(
                    f"object {oid} back references are inconsistent")
        for descriptor in self.schema:
            for oid in descriptor.iterator:
                if self.class_of(oid) != descriptor.cid:
                    raise GenerationError(
                        f"iterator of class {descriptor.cid} lists object "
                        f"{oid} of class {self.class_of(oid)}")

    def statistics(self) -> DatabaseStatistics:
        """Structural summary used by reports and tests."""
        live = 0
        nil = 0
        for obj in self.objects.values():
            for target in obj.oref:
                if target is None:
                    nil += 1
                else:
                    live += 1
        total_bytes = self.total_bytes()
        n = max(self.num_objects, 1)
        population = tuple(
            (descriptor.cid, descriptor.population)
            for descriptor in self.schema)
        return DatabaseStatistics(
            num_classes=self.schema.num_classes,
            num_objects=self.num_objects,
            total_bytes=total_bytes,
            average_object_bytes=total_bytes / n,
            live_references=live,
            nil_references=nil,
            average_fanout=live / n,
            population_by_class=population)

"""The declarative scenario layer: one composable mix behind every runner.

OCB's central claim is *genericity* — one parameterized workload model
that can imitate OO1, OO7 and HyperModel instead of hard-coding each.
This module is that claim applied to the execution side.  A
:class:`WorkloadMix` is a weighted union of the ten operation classes
the reproduction knows:

* the four OCB transaction types (``set``, ``simple``, ``hierarchy``,
  ``stochastic`` — Fig. 3 of the paper), and
* the six generic operations of the paper's Section 5 future work
  (``insert``, ``update``, ``delete``, ``range_lookup``,
  ``sequential_scan``, plus the decode-free ``structure_traversal``
  that expands BFS frontiers through ``traverse_refs_many`` without
  materializing a single record),

each :class:`MixEntry` carrying its own parameters (depth, reverse
probability, range width, …) and the mix carrying the think-time policy.
A :class:`Scenario` adds the client count, the cold/warm protocol sizes
and the backend binding; :class:`ScenarioRunner` executes any scenario
on the unified kernel (:class:`~repro.core.session.Session`) against any
registered backend — in-process (round-robin interleaving) or as real OS
processes through :mod:`repro.parallel`.

The legacy runners are thin shims over this layer:

* :class:`~repro.core.workload.WorkloadRunner` — a single-client,
  transaction-only mix built by :meth:`WorkloadMix.from_workload_parameters`;
* :class:`~repro.core.generic_ops.GenericOperationsRunner` — an
  operation-only mix built by :meth:`WorkloadMix.from_operation_weights`;
* :class:`~repro.multiuser.runner.MultiClientRunner` — the transaction
  mix at ``CLIENTN`` clients.

Their reports are byte-identical to the pre-refactor implementations on
the same seed (pinned by ``tests/core/test_shim_equivalence.py``): the
entry draw, the per-kind RNG consumption and the Lewis–Payne substream
keys (:data:`STREAM_WORKLOAD` for transaction-only mixes,
:data:`STREAM_GENERIC` for operation-only mixes) are exact ports of the
legacy code paths.

Multi-client **mutating** mixes — the workload shape the legacy runners
could not express — partition the object space by client
(``oid % clients == client_id``):

* every client draws its mutation victims from its own partition and
  allocates fresh oids in its own residue lane, so two clients never
  insert the same oid;
* every client's *logical* decisions (which operations, which objects,
  how many records dirtied) derive from a private replica of the object
  graph that evolves only with the client's own mutations — so the
  logical metrics of a ``write_heavy`` scenario are deterministic
  functions of (seed, client id) alone, identical in-process and across
  OS processes;
* the *physical* writes all land in the one shared engine, which is
  where write-write contention genuinely occurs: busy retries are
  counted by the engine, and cross-partition back-reference write-backs
  use last-writer-wins semantics (a write-back that finds its row
  deleted by the owning client is counted as a ``write_conflict``, and a
  traversal read that hits such a row is counted as a ``read_miss``) —
  the benchmark measures contention, it does not impose serializability.
"""

from __future__ import annotations

import copy
import json
import time
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.clustering.base import ClusteringPolicy, NoClustering, \
    PlacementContext
from repro.core.database import OCBDatabase, OCBObject
from repro.core.metrics import LatencyPercentiles, MetricsCollector, \
    PhaseReport
from repro.core.parameters import WorkloadParameters
from repro.core.session import Session
from repro.core.transactions import (
    TransactionKind,
    TransactionResult,
    TransactionSpec,
    run_transaction,
)
from repro.errors import ParameterError, StorageError, UnknownObject, \
    WorkloadError
from repro.obs import trace
from repro.rand.distributions import Distribution, UniformDistribution
from repro.rand.lewis_payne import LewisPayne
from repro.stats import BoundedSample
from repro.store.serializer import StoredObject

__all__ = [
    "GenericOperation",
    "OperationResult",
    "attribute_of",
    "MixEntry",
    "WorkloadMix",
    "Scenario",
    "OpClassStats",
    "ScenarioPhase",
    "ScenarioCollector",
    "ClientScenarioReport",
    "ScenarioReport",
    "ClientExecutor",
    "ScenarioRunner",
    "STREAM_WORKLOAD",
    "STREAM_GENERIC",
    "STREAM_SCENARIO",
    "TRANSACTION_CLASSES",
    "OPERATION_CLASSES",
    "MUTATING_CLASSES",
    "OPERATION_CLASS_ORDER",
]

#: Lewis–Payne substream keys.  The first two are the exact keys the
#: legacy runners used (the shims' byte-identical guarantee depends on
#: them); the third is the native key for mixes combining both worlds.
STREAM_WORKLOAD = 0x0CB0_0001
STREAM_GENERIC = 0x0CB0_00FF
STREAM_SCENARIO = 0x0CB0_05CE

#: Chunk size for sequential-scan prefetches (bounds cache growth).
_SCAN_BATCH = 256

TRANSACTION_CLASSES = ("set", "simple", "hierarchy", "stochastic")
OPERATION_CLASSES = ("insert", "update", "delete", "range_lookup",
                     "sequential_scan", "structure_traversal")
MUTATING_CLASSES = frozenset(("insert", "update", "delete"))

#: Canonical rendering order of the ten operation classes.
OPERATION_CLASS_ORDER = TRANSACTION_CLASSES + OPERATION_CLASSES

#: Table 2's per-kind depth defaults, used when a MixEntry leaves depth
#: unset.  ``structure_traversal`` matches the hierarchy traversal's
#: depth so the two are an apples-to-apples decode A/B.
_DEFAULT_DEPTHS = {"set": 3, "simple": 3, "hierarchy": 5, "stochastic": 50,
                   "structure_traversal": 5}


#: Attribute used by range lookups: a pseudo-random but deterministic
#: percentile derived from the object id (Knuth's multiplicative hash).
def attribute_of(oid: int) -> int:
    """The synthetic ``hundred``-style attribute of an object (0..99)."""
    return ((oid * 2654435761) & 0xFFFFFFFF) % 100


class GenericOperation(str, Enum):
    """The extended operation kinds (the paper's Section 5 future work)."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    RANGE_LOOKUP = "range_lookup"
    SEQUENTIAL_SCAN = "sequential_scan"
    STRUCTURE_TRAVERSAL = "structure_traversal"


@dataclass(frozen=True)
class OperationResult:
    """Metrics of one generic operation."""

    operation: GenericOperation
    objects_touched: int
    io_reads: int
    io_writes: int
    sim_time: float
    wall_time: float


# ---------------------------------------------------------------------- #
# The declarative model
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class MixEntry:
    """One weighted operation class in a :class:`WorkloadMix`.

    Transaction entries use ``depth`` / ``reverse_probability`` /
    ``ref_type`` / ``dedupe`` / ``max_visits`` (semantics of Table 2);
    ``range_width`` parameterizes ``range_lookup`` entries.  Unset depth
    falls back to the paper's per-kind default.

    ``dist5`` is a per-entry *root-distribution override*: when set, this
    entry draws its transaction/traversal roots from its own distribution
    instead of the mix-wide DIST5 — which is how a hot-spot entry (a
    Zipf-skewed sliver of the oid space) composes with uniform background
    traffic in one mix, and how hot-key skew is steered onto (or off) a
    particular shard residue class.
    """

    kind: str
    weight: float = 1.0
    depth: Optional[int] = None
    reverse_probability: float = 0.0
    ref_type: Optional[int] = None
    dedupe: bool = False
    max_visits: int = 5000
    range_width: int = 10
    dist5: Optional[Distribution] = None

    def __post_init__(self) -> None:
        if self.kind not in OPERATION_CLASS_ORDER:
            raise ParameterError(
                f"unknown operation class {self.kind!r}; choose from "
                f"{OPERATION_CLASS_ORDER}")
        if self.weight < 0.0:
            raise ParameterError(
                f"entry weight must be >= 0, got {self.weight}")
        if self.depth is not None and self.depth < 0:
            raise ParameterError(f"depth must be >= 0, got {self.depth}")
        if not 0.0 <= self.reverse_probability <= 1.0:
            raise ParameterError(
                "reverse_probability must be in [0, 1], got "
                f"{self.reverse_probability}")
        if self.max_visits < 1:
            raise ParameterError(
                f"max_visits must be >= 1, got {self.max_visits}")
        if not 1 <= self.range_width <= 100:
            raise ParameterError(
                f"range_width must be in [1, 100], got {self.range_width}")

    @property
    def is_transaction(self) -> bool:
        """Whether this entry is one of the four OCB transaction types."""
        return self.kind in TRANSACTION_CLASSES

    @property
    def is_mutating(self) -> bool:
        """Whether this entry writes (insert/update/delete)."""
        return self.kind in MUTATING_CLASSES

    @property
    def resolved_depth(self) -> int:
        """Entry depth, falling back to the Table 2 per-kind default."""
        if self.depth is not None:
            return self.depth
        return _DEFAULT_DEPTHS.get(self.kind, 0)

    def to_dict(self) -> dict:
        """JSON-ready mapping (defaults omitted for readability)."""
        spec: Dict[str, object] = {"kind": self.kind, "weight": self.weight}
        for name in ("depth", "reverse_probability", "ref_type", "dedupe",
                     "range_width"):
            value = getattr(self, name)
            if value != MixEntry.__dataclass_fields__[name].default:
                spec[name] = value
        if self.max_visits != 5000:
            spec["max_visits"] = self.max_visits
        if self.dist5 is not None:
            # Same wire format as the mix-wide DIST5: name + every public
            # constructor parameter.
            spec["dist5"] = {
                "name": self.dist5.name,
                **{key: value for key, value in vars(self.dist5).items()
                   if not key.startswith("_")}}
        return spec

    @classmethod
    def from_dict(cls, spec: Mapping[str, object]) -> "MixEntry":
        """Build from a JSON mapping; unknown keys are rejected."""
        from repro.rand.distributions import distribution_from_name
        allowed = set(cls.__dataclass_fields__)
        unknown = set(spec) - allowed
        if unknown:
            raise ParameterError(
                f"unknown MixEntry keys {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}")
        spec = dict(spec)
        dist5 = spec.pop("dist5", None)
        if isinstance(dist5, str):
            dist5 = distribution_from_name(dist5)
        elif isinstance(dist5, Mapping):
            params = dict(dist5)
            name = params.pop("name", None)
            if not isinstance(name, str):
                raise ParameterError(
                    "a dist5 mapping needs a 'name' string")
            dist5 = distribution_from_name(name, **params)
        return cls(dist5=dist5, **spec)  # type: ignore[arg-type]

    def root_distribution(self, mix_dist5: Distribution) -> Distribution:
        """The distribution this entry draws roots from (override or mix)."""
        return self.dist5 if self.dist5 is not None else mix_dist5


@dataclass(frozen=True)
class WorkloadMix:
    """A weighted, picklable union of operation classes.

    The mix is the *entire* declarative description of what one client
    does per protocol slot: entries are drawn by weight (one uniform
    consumed per slot, cumulative thresholds in entry order — the exact
    scheme both legacy runners used), then the drawn entry executes
    with its own parameters.  ``think_time`` is charged on the simulated
    clock after every operation; ``dist5`` draws transaction roots
    (RAND5 of Table 2); ``stream`` overrides the Lewis–Payne substream
    key (``None`` resolves to the legacy key for pure mixes, see
    :attr:`resolved_stream`).
    """

    name: str = "custom"
    entries: Tuple[MixEntry, ...] = ()
    think_time: float = 0.0
    dist5: Distribution = field(default_factory=UniformDistribution)
    stream: Optional[int] = None
    #: ``True`` declares the weights to be *probabilities*: the entry
    #: draw compares the raw uniform against the cumulative weights
    #: without scaling by :attr:`total_weight` — bit-equal to the legacy
    #: ``draw_spec`` thresholds even when float summation leaves the
    #: total one ulp off 1.0.  Set by :meth:`from_workload_parameters`.
    unit_weights: bool = False

    def __post_init__(self) -> None:
        entries = tuple(
            entry if isinstance(entry, MixEntry) else MixEntry(**entry)
            for entry in self.entries)
        object.__setattr__(self, "entries", entries)
        if not entries:
            raise ParameterError("a WorkloadMix needs at least one entry")
        if self.think_time < 0.0:
            raise ParameterError(
                f"think_time must be >= 0, got {self.think_time}")
        if self.total_weight <= 0.0:
            raise ParameterError("mix weights must sum to > 0")

    # -- structural properties ------------------------------------------ #

    @property
    def total_weight(self) -> float:
        """Sum of entry weights, in entry order (draw denominator)."""
        return sum(entry.weight for entry in self.entries)

    @property
    def mutates(self) -> bool:
        """Whether any positively-weighted entry writes."""
        return any(entry.is_mutating and entry.weight > 0.0
                   for entry in self.entries)

    @property
    def read_only(self) -> bool:
        """Whether no positively-weighted entry writes."""
        return not self.mutates

    @property
    def transaction_only(self) -> bool:
        """Whether every entry is an OCB transaction type."""
        return all(entry.is_transaction for entry in self.entries)

    @property
    def operation_only(self) -> bool:
        """Whether every entry is a generic operation."""
        return all(not entry.is_transaction for entry in self.entries)

    @property
    def resolved_stream(self) -> int:
        """Substream key: explicit, else the legacy key for pure mixes."""
        if self.stream is not None:
            return self.stream
        if self.transaction_only:
            return STREAM_WORKLOAD
        if self.operation_only:
            return STREAM_GENERIC
        return STREAM_SCENARIO

    # -- construction ---------------------------------------------------- #

    @classmethod
    def from_workload_parameters(cls, parameters: WorkloadParameters,
                                 name: str = "ocb-transactions"
                                 ) -> "WorkloadMix":
        """The Table 2 transaction mix as a declarative WorkloadMix.

        Entry order (set, simple, hierarchy, stochastic) and weights are
        exactly the PSET/PSIMPLE/PHIER/PSTOCH thresholds of the legacy
        ``draw_spec``, so a ScenarioRunner over this mix consumes the
        client's RNG stream identically.
        """
        p = parameters
        entries = tuple(
            MixEntry(kind=kind, weight=weight, depth=depth,
                     reverse_probability=p.reverse_probability,
                     ref_type=p.hierarchy_ref_type if kind == "hierarchy"
                     else None,
                     dedupe=p.dedupe_visits, max_visits=p.max_visits)
            for kind, weight, depth in (
                ("set", p.p_set, p.set_depth),
                ("simple", p.p_simple, p.simple_depth),
                ("hierarchy", p.p_hierarchy, p.hierarchy_depth),
                ("stochastic", p.p_stochastic, p.stochastic_depth)))
        return cls(name=name, entries=entries, think_time=p.think_time,
                   dist5=p.dist5, unit_weights=True)

    @classmethod
    def from_operation_weights(cls, weights: Optional[Mapping] = None,
                               name: str = "generic-operations",
                               think_time: float = 0.0) -> "WorkloadMix":
        """An operation-only mix from a ``{operation: weight}`` mapping.

        Mapping order is preserved (it defines the cumulative draw
        thresholds, exactly as the legacy ``run_mix`` consumed them).
        Keys may be :class:`GenericOperation` members or their string
        values; ``None`` (or an empty mapping) uses the legacy default
        mix.
        """
        if not weights:
            weights = {
                GenericOperation.INSERT: 0.25,
                GenericOperation.UPDATE: 0.35,
                GenericOperation.DELETE: 0.10,
                GenericOperation.RANGE_LOOKUP: 0.25,
                GenericOperation.SEQUENTIAL_SCAN: 0.05,
            }
        entries = tuple(
            MixEntry(kind=getattr(operation, "value", str(operation)),
                     weight=weight)
            for operation, weight in weights.items())
        return cls(name=name, entries=entries, think_time=think_time)

    # -- JSON specs ------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON-ready mapping (``dist5``/``stream`` only when non-default)."""
        spec: Dict[str, object] = {
            "name": self.name,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        if self.think_time:
            spec["think_time"] = self.think_time
        if not isinstance(self.dist5, UniformDistribution):
            # Name + every public constructor parameter, so a skewed or
            # localized root distribution survives the round trip intact.
            spec["dist5"] = {
                "name": self.dist5.name,
                **{key: value for key, value in vars(self.dist5).items()
                   if not key.startswith("_")}}
        if self.stream is not None:
            spec["stream"] = self.stream
        if self.unit_weights:
            spec["unit_weights"] = True
        return spec

    @classmethod
    def from_dict(cls, spec: Mapping[str, object]) -> "WorkloadMix":
        """Build from a JSON mapping (``dist5`` a name or name+params)."""
        from repro.rand.distributions import distribution_from_name
        spec = dict(spec)
        entries = tuple(MixEntry.from_dict(entry)
                        for entry in spec.pop("entries", ()))
        dist5 = spec.pop("dist5", None)
        if isinstance(dist5, str):
            dist5 = distribution_from_name(dist5)
        elif isinstance(dist5, Mapping):
            params = dict(dist5)
            name = params.pop("name", None)
            if not isinstance(name, str):
                raise ParameterError(
                    "a dist5 mapping needs a 'name' string")
            dist5 = distribution_from_name(name, **params)
        unknown = set(spec) - {"name", "think_time", "stream",
                               "unit_weights"}
        if unknown:
            raise ParameterError(
                f"unknown WorkloadMix keys {sorted(unknown)}")
        return cls(entries=entries,
                   dist5=dist5 or UniformDistribution(),
                   **spec)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Scenario:
    """A complete executable description: mix + clients + protocol + engine.

    ``cold_ops`` warm the caches, ``warm_ops`` are the measured phase —
    the OCB COLDN/HOTN protocol generalized to arbitrary mixes.  The
    backend binding is a registry *name* plus options so the scenario
    stays picklable and can be replayed by worker processes.
    """

    mix: WorkloadMix
    clients: int = 1
    cold_ops: int = 10
    warm_ops: int = 50
    backend: str = "simulated"
    backend_options: Dict[str, object] = field(default_factory=dict)
    seed: Optional[int] = None
    batch: Optional[bool] = None
    #: Decode-free read mode: sessions ask the engine for lazy zero-copy
    #: records (header parsed, refs/back-refs deferred).  Default off so
    #: goldens and cost accounting stay byte-identical.
    lazy: bool = False
    #: Pipelined BFS: sessions keep the next frontier chunk's read in
    #: flight (engine submit/collect protocol) while the current chunk's
    #: references are filtered.  Default off — the off path executes none
    #: of the pool machinery, and traversal *results* are identical
    #: either way (pinned by the equivalence tests).
    pipeline: bool = False

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ParameterError(f"clients must be >= 1, got {self.clients}")
        if self.cold_ops < 0 or self.warm_ops < 0:
            raise ParameterError("cold_ops and warm_ops must be >= 0")

    @property
    def partitioned(self) -> bool:
        """Whether clients mutate disjoint partitions (see module docs)."""
        return self.clients > 1 and self.mix.mutates

    def to_dict(self) -> dict:
        """JSON-ready mapping (the ``ocb scenario`` spec-file format)."""
        spec: Dict[str, object] = {
            "mix": self.mix.to_dict(),
            "clients": self.clients,
            "cold_ops": self.cold_ops,
            "warm_ops": self.warm_ops,
            "backend": self.backend,
        }
        if self.backend_options:
            spec["backend_options"] = dict(self.backend_options)
        if self.seed is not None:
            spec["seed"] = self.seed
        if self.batch is not None:
            spec["batch"] = self.batch
        if self.lazy:
            spec["lazy"] = self.lazy
        if self.pipeline:
            spec["pipeline"] = self.pipeline
        return spec

    @classmethod
    def from_dict(cls, spec: Mapping[str, object]) -> "Scenario":
        """Build from a JSON mapping (see :meth:`to_dict`)."""
        spec = dict(spec)
        mix = spec.pop("mix", None)
        if mix is None:
            raise ParameterError("a scenario spec needs a 'mix' mapping")
        if not isinstance(mix, WorkloadMix):
            mix = WorkloadMix.from_dict(mix)
        options = dict(spec.pop("backend_options", {}) or {})
        unknown = set(spec) - {"clients", "cold_ops", "warm_ops", "backend",
                               "seed", "batch", "lazy", "pipeline"}
        if unknown:
            raise ParameterError(f"unknown Scenario keys {sorted(unknown)}")
        return cls(mix=mix, backend_options=options,
                   **spec)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a JSON spec document."""
        try:
            spec = json.loads(text)
        except ValueError as exc:
            raise ParameterError(f"invalid scenario JSON: {exc}") from exc
        if not isinstance(spec, dict):
            raise ParameterError("a scenario spec must be a JSON object")
        return cls.from_dict(spec)


# ---------------------------------------------------------------------- #
# Per-operation-class metrics
# ---------------------------------------------------------------------- #

@dataclass
class OpClassStats:
    """Aggregates for one operation class (transaction kind or generic op)."""

    op_class: str
    count: int = 0
    objects: int = 0
    io_reads: int = 0
    io_writes: int = 0
    sim_time: float = 0.0
    wall_time: float = 0.0
    busy_retries: int = 0
    # Bounded: exact samples for short runs, log-bucketed histogram once
    # a long open-loop sweep pushes past the fold threshold.
    wall_samples: BoundedSample = field(default_factory=BoundedSample)

    def add(self, objects: int, io_reads: int, io_writes: int,
            sim_time: float, wall_seconds: float, retries: int = 0) -> None:
        """Fold one executed operation into the aggregate."""
        self.count += 1
        self.objects += objects
        self.io_reads += io_reads
        self.io_writes += io_writes
        self.sim_time += sim_time
        self.wall_time += wall_seconds
        self.busy_retries += retries
        self.wall_samples.append(wall_seconds)

    def merge(self, other: "OpClassStats") -> None:
        """Fold another aggregate (multi-client merges)."""
        self.count += other.count
        self.objects += other.objects
        self.io_reads += other.io_reads
        self.io_writes += other.io_writes
        self.sim_time += other.sim_time
        self.wall_time += other.wall_time
        self.busy_retries += other.busy_retries
        self.wall_samples.extend(other.wall_samples)

    @property
    def objects_per_op(self) -> float:
        """Mean objects touched per operation."""
        return self.objects / self.count if self.count else 0.0

    @property
    def sim_time_per_op(self) -> float:
        """Mean simulated cost per operation (seconds)."""
        return self.sim_time / self.count if self.count else 0.0

    def wall_percentiles(self) -> LatencyPercentiles:
        """Wall-clock latency percentiles over the class's operations."""
        return LatencyPercentiles.from_samples(self.wall_samples)

    def to_dict(self) -> dict:
        """Flat JSON-ready mapping (one row of the per-class breakdown)."""
        wall = self.wall_percentiles()
        return {
            "class": self.op_class,
            "count": self.count,
            "objects": self.objects,
            "io_reads": self.io_reads,
            "io_writes": self.io_writes,
            "sim_time": self.sim_time,
            "wall_p50_ms": wall.p50 * 1e3,
            "wall_p95_ms": wall.p95 * 1e3,
            "wall_p99_ms": wall.p99 * 1e3,
            "wall_p999_ms": wall.p999 * 1e3,
            "busy_retries": self.busy_retries,
        }


@dataclass
class ScenarioPhase:
    """One protocol phase (cold or warm) of one client, per-class.

    ``classic`` is the legacy per-transaction-kind :class:`PhaseReport`
    covering the phase's transaction entries — the bridge that lets the
    shims return byte-identical reports and the multi-user folds reuse
    the existing percentile machinery.
    """

    name: str
    per_class: Dict[str, OpClassStats] = field(default_factory=dict)
    classic: PhaseReport = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.classic is None:
            self.classic = PhaseReport(name=self.name)

    @property
    def operation_count(self) -> int:
        """Operations executed in the phase (all classes)."""
        return sum(stats.count for stats in self.per_class.values())

    @property
    def totals(self) -> OpClassStats:
        """Aggregate over every class."""
        total = OpClassStats(op_class="all")
        for stats in self.per_class.values():
            total.merge(stats)
        return total

    def stats_for(self, op_class: str) -> OpClassStats:
        """Stats for one class (empty aggregate if it never ran)."""
        return self.per_class.get(op_class, OpClassStats(op_class=op_class))

    def wall_percentiles(self) -> LatencyPercentiles:
        """Wall-clock P50/P95/P99 over every operation in the phase."""
        return self.totals.wall_percentiles()

    def merge(self, other: "ScenarioPhase") -> None:
        """Fold another phase (multi-client merges)."""
        for op_class, stats in other.per_class.items():
            if op_class in self.per_class:
                self.per_class[op_class].merge(stats)
            else:
                merged = OpClassStats(op_class=op_class)
                merged.merge(stats)
                self.per_class[op_class] = merged
        self.classic.merge(other.classic)

    def rows(self) -> List[List[object]]:
        """Table rows in canonical class order, with the totals row."""
        table: List[List[object]] = []
        for op_class in OPERATION_CLASS_ORDER:
            stats = self.per_class.get(op_class)
            if stats is None or stats.count == 0:
                continue
            wall = stats.wall_percentiles()
            table.append([op_class, stats.count, stats.objects_per_op,
                          stats.sim_time_per_op, wall.p50 * 1e3,
                          wall.p95 * 1e3, wall.p99 * 1e3,
                          stats.busy_retries])
        totals = self.totals
        wall = totals.wall_percentiles()
        table.append(["all", totals.count, totals.objects_per_op,
                      totals.sim_time_per_op, wall.p50 * 1e3,
                      wall.p95 * 1e3, wall.p99 * 1e3,
                      totals.busy_retries])
        return table

    def to_dict(self) -> dict:
        """JSON-ready mapping: per-class rows in canonical order."""
        return {
            "name": self.name,
            "operations": self.operation_count,
            "per_class": [self.per_class[op_class].to_dict()
                          for op_class in OPERATION_CLASS_ORDER
                          if op_class in self.per_class],
        }


class ScenarioCollector:
    """Accumulates one client's executed operations into a phase."""

    def __init__(self, phase_name: str) -> None:
        self.name = phase_name
        self.classic = MetricsCollector(phase_name)
        self.per_class: Dict[str, OpClassStats] = {}
        self.operation_results: List[OperationResult] = []

    def record_transaction(self, result: TransactionResult, delta,
                           wall_seconds: float, retries: int = 0) -> None:
        """Fold one executed OCB transaction."""
        self.classic.record(result, delta, wall_seconds)
        stats = self.per_class.setdefault(
            result.kind.value, OpClassStats(op_class=result.kind.value))
        stats.add(objects=result.visits, io_reads=delta.io_reads,
                  io_writes=delta.io_writes, sim_time=delta.sim_time,
                  wall_seconds=wall_seconds, retries=retries)

    def record_operation(self, result: OperationResult,
                         retries: int = 0) -> None:
        """Fold one executed generic operation."""
        self.operation_results.append(result)
        stats = self.per_class.setdefault(
            result.operation.value,
            OpClassStats(op_class=result.operation.value))
        stats.add(objects=result.objects_touched, io_reads=result.io_reads,
                  io_writes=result.io_writes, sim_time=result.sim_time,
                  wall_seconds=result.wall_time, retries=retries)

    @property
    def phase(self) -> ScenarioPhase:
        """The phase built so far."""
        return ScenarioPhase(name=self.name, per_class=self.per_class,
                             classic=self.classic.report)


@dataclass
class ClientScenarioReport:
    """One client's cold + warm scenario phases and contention counters."""

    client_id: int
    cold: ScenarioPhase
    warm: ScenarioPhase
    read_misses: int = 0
    write_conflicts: int = 0
    busy_retries: int = 0
    busy_wait_seconds: float = 0.0
    #: Operations (and traversal frontier edges) a sharded engine routed
    #: off this client's home shard — 0 on unsharded backends.
    remote_reads: int = 0
    pid: Optional[int] = None
    wall_seconds: float = 0.0
    #: Open-loop pacing counters — operations whose start lagged their
    #: intended arrival beyond the grace window, and the deepest
    #: due-but-unstarted arrival backlog.  Both stay 0 for closed-loop
    #: runs, where no arrival schedule exists.
    late_starts: int = 0
    max_backlog: int = 0

    @property
    def operations(self) -> int:
        """Operations this client executed (cold + warm)."""
        return self.cold.operation_count + self.warm.operation_count

    def to_dict(self) -> dict:
        """JSON-ready mapping."""
        return {
            "client": self.client_id,
            "pid": self.pid,
            "operations": self.operations,
            "read_misses": self.read_misses,
            "write_conflicts": self.write_conflicts,
            "busy_retries": self.busy_retries,
            "busy_wait_seconds": self.busy_wait_seconds,
            "remote_reads": self.remote_reads,
            "late_starts": self.late_starts,
            "max_backlog": self.max_backlog,
            "cold": self.cold.to_dict(),
            "warm": self.warm.to_dict(),
        }


@dataclass
class ScenarioReport:
    """Per-client and merged metrics of one executed scenario."""

    scenario_name: str
    clients: List[ClientScenarioReport] = field(default_factory=list)
    backend_name: str = "simulated"
    #: ``"interleaved"`` — round-robin in one process; ``"shared"`` /
    #: ``"replicated"`` — the process-parallel modes.
    mode: str = "interleaved"
    elapsed_seconds: float = 0.0
    executed_parallel: bool = False
    #: Engine-level SQL statements executed (0 for non-SQL backends) —
    #: summed over workers when the scenario ran as processes.
    sql_round_trips: int = 0
    #: Engine-level decode accounting: records fully decoded from bytes,
    #: and reads/frontier answers served without a decode (lazy records
    #: and link-index traversals).  Summed over workers for processes.
    records_decoded: int = 0
    decodes_avoided: int = 0
    #: Concurrent-I/O accounting from pooled engines: the peak number of
    #: simultaneously executing pooled reads (max over workers — ``> 1``
    #: proves genuine overlap), cumulative sub-batches / shards fanned
    #: out concurrently (summed), and time spent blocked on an exhausted
    #: pool (summed).  All zero on sequential configurations.
    max_inflight_reads: int = 0
    concurrent_batches: int = 0
    pool_wait_seconds: float = 0.0
    #: Per-worker resource usage mappings when the scenario ran as
    #: monitored OS processes (see :class:`repro.obs.ResourceMonitor`).
    worker_resources: List[Dict[str, object]] = field(default_factory=list)
    #: Open-loop provenance: the offered arrival rate (ops/s, summed
    #: over clients) and arrival process ("poisson"/"fixed") when the
    #: scenario ran under the load generator; ``None`` for closed loops.
    offered_rate: Optional[float] = None
    arrival_mode: Optional[str] = None

    @property
    def client_count(self) -> int:
        """Number of clients that ran."""
        return len(self.clients)

    @property
    def merged_cold(self) -> ScenarioPhase:
        """All clients' cold phases folded together."""
        merged = ScenarioPhase(name="cold")
        for client in self.clients:
            merged.merge(client.cold)
        return merged

    @property
    def merged_warm(self) -> ScenarioPhase:
        """All clients' warm phases folded together."""
        merged = ScenarioPhase(name="warm")
        for client in self.clients:
            merged.merge(client.warm)
        return merged

    @property
    def total_operations(self) -> int:
        """Operations executed across all clients (cold + warm)."""
        return sum(client.operations for client in self.clients)

    @property
    def write_operations(self) -> int:
        """Mutating operations executed across all clients and phases."""
        total = 0
        for client in self.clients:
            for phase in (client.cold, client.warm):
                for op_class in MUTATING_CLASSES:
                    total += phase.stats_for(op_class).count
        return total

    @property
    def busy_retries(self) -> int:
        """Lock collisions retried, summed over all clients."""
        return sum(client.busy_retries for client in self.clients)

    @property
    def busy_wait_seconds(self) -> float:
        """Time spent backing off on locks, summed over all clients."""
        return sum(client.busy_wait_seconds for client in self.clients)

    @property
    def remote_reads(self) -> int:
        """Shard-crossing reads and frontier edges, summed over clients
        (0 unless the backend shards the oid space)."""
        return sum(client.remote_reads for client in self.clients)

    @property
    def read_misses(self) -> int:
        """Tolerated reads of rows deleted by a concurrent client."""
        return sum(client.read_misses for client in self.clients)

    @property
    def write_conflicts(self) -> int:
        """Tolerated write-backs to rows deleted by a concurrent client."""
        return sum(client.write_conflicts for client in self.clients)

    @property
    def late_starts(self) -> int:
        """Operations that started late against their intended arrival,
        summed over clients (0 for closed-loop runs)."""
        return sum(client.late_starts for client in self.clients)

    @property
    def max_backlog(self) -> int:
        """Deepest due-but-unstarted arrival backlog any client saw."""
        return max((client.max_backlog for client in self.clients),
                   default=0)

    @property
    def throughput(self) -> float:
        """Aggregate operations per second of harness wall-clock."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.total_operations / self.elapsed_seconds

    def describe(self) -> str:
        """One line: clients, mode, throughput, contention."""
        open_loop = ""
        if self.offered_rate is not None:
            open_loop = (f", offered {self.offered_rate:g} op/s "
                         f"({self.arrival_mode}), {self.late_starts} "
                         f"late starts, backlog <= {self.max_backlog}")
        return (f"scenario {self.scenario_name!r}: {self.client_count} "
                f"clients ({self.mode}) on {self.backend_name!r}, "
                f"{self.total_operations} ops "
                f"({self.write_operations} writes) in "
                f"{self.elapsed_seconds:.3f} s "
                f"({self.throughput:.1f} op/s), "
                f"{self.busy_retries} busy retries, "
                f"{self.remote_reads} remote reads, "
                f"{self.write_conflicts} write conflicts"
                f"{open_loop}")

    def to_dict(self) -> dict:
        """JSON-ready mapping (the ``ocb scenario --json`` document)."""
        return {
            "scenario": self.scenario_name,
            "backend": self.backend_name,
            "mode": self.mode,
            "clients": self.client_count,
            "executed_parallel": self.executed_parallel,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput": self.throughput,
            "operations": self.total_operations,
            "write_operations": self.write_operations,
            "busy_retries": self.busy_retries,
            "busy_wait_seconds": self.busy_wait_seconds,
            "remote_reads": self.remote_reads,
            "sql_round_trips": self.sql_round_trips,
            "records_decoded": self.records_decoded,
            "decodes_avoided": self.decodes_avoided,
            "max_inflight_reads": self.max_inflight_reads,
            "concurrent_batches": self.concurrent_batches,
            "pool_wait_seconds": self.pool_wait_seconds,
            "read_misses": self.read_misses,
            "write_conflicts": self.write_conflicts,
            "late_starts": self.late_starts,
            "max_backlog": self.max_backlog,
            "offered_rate": self.offered_rate,
            "arrival_mode": self.arrival_mode,
            "warm": self.merged_warm.to_dict(),
            "cold": self.merged_cold.to_dict(),
            "per_client": [client.to_dict() for client in self.clients],
        }


# ---------------------------------------------------------------------- #
# The executor: one client, any mix
# ---------------------------------------------------------------------- #

class ClientExecutor:
    """Executes one client's share of a mix on a kernel session.

    This is where the legacy runners' drawing and execution mechanics
    now live, generalized along two axes:

    * **any mix** — one weighted-entry draw per slot (the exact
      cumulative-threshold scheme both legacy runners used), then the
      entry's own RNG consumption (roots, reverse flags, victims);
    * **many clients** — when ``partitioned`` is set, mutations target
      only the client's own residue class (``oid % total_clients ==
      client_id``), fresh oids come from the client's own lane, and the
      logical view (``view``) is this client's private replica.

    With one client, no partitioning and a pure mix, every draw reduces
    bit-exactly to the legacy runner it replaced — the property the shim
    equivalence tests pin.
    """

    def __init__(self, database: OCBDatabase, mix: WorkloadMix,
                 session: Session, *, client_id: int = 0,
                 total_clients: int = 1,
                 rng: Optional[LewisPayne] = None,
                 seed: Optional[int] = None,
                 partitioned: bool = False,
                 tolerate_conflicts: bool = False) -> None:
        if client_id < 0:
            raise ParameterError(
                f"client_id must be >= 0, got {client_id}")
        if partitioned and total_clients > 1 and client_id >= total_clients:
            raise ParameterError(
                f"client_id {client_id} outside the partition range "
                f"0..{total_clients - 1}")
        self.view = database
        self.mix = mix
        self.session = session
        self.policy = session.policy
        self.client_id = client_id
        self.total_clients = total_clients
        self.partitioned = partitioned and total_clients > 1
        self.tolerate_conflicts = tolerate_conflicts
        if rng is None:
            base_seed = seed if seed is not None \
                else database.parameters.seed
            rng = LewisPayne(base_seed).spawn(
                mix.resolved_stream + client_id)
        self.rng = rng
        self.read_misses = 0
        self.write_conflicts = 0
        self._live_cache: Optional[List[int]] = None
        self._owned_cache: Optional[List[int]] = None
        self._dispatch: Dict[str, Callable[[MixEntry], OperationResult]] = {
            "insert": lambda entry: self.op_insert(),
            "update": lambda entry: self.op_update(),
            "delete": lambda entry: self.op_delete(),
            "range_lookup": lambda entry: self.op_range_lookup(
                width=entry.range_width),
            "sequential_scan": lambda entry: self.op_sequential_scan(),
            "structure_traversal": lambda entry:
                self.op_structure_traversal(entry),
        }

    # -- partition helpers ----------------------------------------------- #

    def _owns(self, oid: int) -> bool:
        """Whether this client's partition contains *oid*."""
        if not self.partitioned:
            return True
        return oid % self.total_clients == self.client_id

    def _invalidate_caches(self) -> None:
        self._live_cache = None
        self._owned_cache = None

    def _live_sorted(self) -> List[int]:
        """Every live oid of the view, sorted (transaction-root domain)."""
        if self._live_cache is None:
            self._live_cache = sorted(self.view.objects)
        return self._live_cache

    def _owned_sorted(self) -> List[int]:
        """The client's mutable oids, sorted (victim-selection domain)."""
        if not self.partitioned:
            return self._live_sorted()
        if self._owned_cache is None:
            self._owned_cache = [oid for oid in self._live_sorted()
                                 if self._owns(oid)]
        return self._owned_cache

    def _next_oid(self) -> int:
        """The next fresh oid in this client's allocation lane."""
        if not self.partitioned:
            return self.view.next_oid
        floor = max(self.view.objects, default=0) + 1
        return floor + (self.client_id - floor) % self.total_clients

    def _busy_retries(self) -> int:
        return int(getattr(self.session.store, "busy_retries", 0) or 0)

    # -- entry drawing ---------------------------------------------------- #

    def draw_entry(self, mix: Optional[WorkloadMix] = None) -> MixEntry:
        """Draw one entry by weight (one uniform consumed).

        ``u = random() * total`` compared against cumulative thresholds
        in entry order — the exact scheme of the legacy ``run_mix``.
        Probability mixes (:attr:`WorkloadMix.unit_weights`, Table 2's
        PSET..PSTOCH) skip the scaling so the comparison is bit-equal to
        the legacy ``draw_spec`` thresholds even when float summation
        leaves the total one ulp off 1.0.
        """
        mix = mix or self.mix
        u = self.rng.random()
        if not mix.unit_weights:
            u *= mix.total_weight
        acc = 0.0
        chosen = mix.entries[-1]
        for entry in mix.entries:
            acc += entry.weight
            if u < acc:
                chosen = entry
                break
        return chosen

    def _owned_count(self) -> int:
        """Live objects in the client's mutable partition."""
        if not self.partitioned:
            return len(self.view.objects)
        return len(self._owned_sorted())

    def _guarded(self, entry: MixEntry) -> MixEntry:
        """The legacy keep-the-database-populated guard, per partition."""
        if entry.kind == "delete" and self._owned_count() <= 1:
            return MixEntry(kind="insert")
        return entry

    def draw_transaction_spec(self, entry: MixEntry) -> TransactionSpec:
        """Draw root, direction and (for hierarchies) reference type.

        RNG consumption order matches the legacy ``draw_spec`` exactly:
        root via DIST5, then the reverse flag (only when the entry's
        reverse probability is positive), then the hierarchy type (only
        when unset).  On a static database the DIST5 draw *is* the root
        oid; under mutation the draw is mapped onto the sorted live oids
        so roots always exist in this client's view.
        """
        if not entry.is_transaction:
            raise WorkloadError(
                f"entry {entry.kind!r} is not a transaction class")
        kind = TransactionKind(entry.kind)
        live = self._live_sorted()
        if not live:
            raise WorkloadError("the database has no objects to traverse")
        drawn = entry.root_distribution(self.mix.dist5).draw(
            self.rng, 1, self.view.num_objects)
        root = live[(drawn - 1) % len(live)]
        reverse = (entry.reverse_probability > 0.0
                   and self.rng.random() < entry.reverse_probability)
        ref_type = entry.ref_type
        if kind is TransactionKind.HIERARCHY and ref_type is None:
            ref_type = self.rng.randint(
                1, self.view.parameters.num_ref_types)
        return TransactionSpec(kind=kind, root=root,
                               depth=entry.resolved_depth,
                               reverse=reverse, ref_type=ref_type,
                               dedupe=entry.dedupe,
                               max_visits=entry.max_visits)

    # -- slot execution --------------------------------------------------- #

    def step(self, collector: ScenarioCollector,
             mix: Optional[WorkloadMix] = None) -> None:
        """Draw one entry from the mix and execute it."""
        entry = self._guarded(self.draw_entry(mix))
        self.execute(entry, collector)

    def execute(self, entry: MixEntry, collector: ScenarioCollector) -> None:
        """Execute one already-drawn entry, recording its metrics."""
        if trace.enabled:
            with trace.span("scenario.op", kind=entry.kind,
                            client=self.client_id):
                self._execute(entry, collector)
        else:
            self._execute(entry, collector)

    def _execute(self, entry: MixEntry, collector: ScenarioCollector) -> None:
        retries_before = self._busy_retries()
        if entry.is_transaction:
            result, delta, wall = self.run_transaction_entry(entry)
            collector.record_transaction(
                result, delta, wall,
                retries=self._busy_retries() - retries_before)
            self.session.charge_think_time(self.mix.think_time)
            self._maybe_auto_reorganize()
        else:
            result = self._dispatch[entry.kind](entry)
            collector.record_operation(
                result, retries=self._busy_retries() - retries_before)
            self.session.charge_think_time(self.mix.think_time)

    def run_transaction_entry(self, entry: MixEntry
                              ) -> Tuple[TransactionResult, object, float]:
        """Execute one transaction entry; returns (result, delta, wall).

        In tolerant mode a traversal that reads a row deleted by a
        concurrent client is aborted and counted as a ``read_miss`` —
        the result records zero visits and ``truncated``.
        """
        spec = self.draw_transaction_spec(entry)
        span = self.session.measure()
        span.__enter__()
        try:
            result = run_transaction(self.session, spec, self.rng)
        except UnknownObject:
            span.__exit__(None, None, None)
            if not self.tolerate_conflicts:
                raise
            self.read_misses += 1
            self.session.end_transaction()
            result = TransactionResult(
                kind=spec.kind, root=spec.root, visits=0,
                distinct_objects=0, max_depth_reached=0,
                reverse=spec.reverse, ref_type=spec.ref_type,
                truncated=True)
        else:
            span.__exit__(None, None, None)
        return result, span.delta, span.wall

    # ------------------------------------------------------------------ #
    # The generic operations (ported verbatim from the legacy runner,
    # with partition-aware victim selection and tolerant write-backs)
    # ------------------------------------------------------------------ #

    def op_insert(self) -> OperationResult:
        """Create one object (class via DIST3, references via DIST4)."""
        def body() -> int:
            params = self.view.parameters
            oid = self._next_oid()
            cid = params.dist3.draw(self.rng, 1, params.num_classes,
                                    center=oid)
            descriptor = self.view.schema.get(cid)
            obj = OCBObject(oid=oid, cid=cid,
                            oref=[None] * descriptor.max_nref)
            self.view.add_object(obj)
            self._invalidate_caches()
            dirty: Dict[int, None] = {}
            low, high = params.object_ref_bounds(
                min(oid, params.num_objects or oid))
            for index, _type_id, target_class in descriptor.references():
                if target_class is None:
                    continue
                iterator = self.view.schema.get(target_class).iterator
                if not iterator:
                    continue
                drawn = params.dist4.draw(self.rng, low, high, center=oid)
                target = iterator[(drawn - 1) % len(iterator)]
                if target == oid:
                    continue
                obj.oref[index] = target
                self.view.get(target).back_refs.append((oid, index))
                dirty[target] = None
            self._write_dirty(dirty)
            self._store_insert(self._record_for(oid))
            self.session.flush()
            return 1 + len(dirty)
        return self._timed(GenericOperation.INSERT, body)

    def op_update(self, oid: Optional[int] = None) -> OperationResult:
        """Redraw one reference of an object, fixing both back-ref sides."""
        def body() -> int:
            target_oid = oid if oid is not None else self._pick_oid()
            obj = self.view.get(target_oid)
            slots = [i for i, t in enumerate(obj.oref) if t is not None]
            if not slots:
                # Nothing to rewire; still a (logical) attribute update.
                self._write_dirty({target_oid: None})
                self.session.flush()
                return 1
            slot = slots[self.rng.randint(0, len(slots) - 1)]
            old_target = obj.oref[slot]
            descriptor = self.view.schema.get(obj.cid)
            target_class = descriptor.cref[slot]
            iterator = self.view.schema.get(target_class).iterator
            params = self.view.parameters
            low, high = params.object_ref_bounds(target_oid)
            drawn = params.dist4.draw(self.rng, low, high, center=target_oid)
            new_target = iterator[(drawn - 1) % len(iterator)]
            if new_target == old_target:
                self._write_dirty({target_oid: None})
                self.session.flush()
                return 1
            obj.oref[slot] = new_target
            old_obj = self.view.get(old_target)
            old_obj.back_refs.remove((target_oid, slot))
            self.view.get(new_target).back_refs.append((target_oid, slot))
            dirty = dict.fromkeys((target_oid, old_target, new_target))
            self._write_dirty(dirty)
            self.session.flush()
            return len(dirty)
        return self._timed(GenericOperation.UPDATE, body)

    def op_delete(self, oid: Optional[int] = None) -> OperationResult:
        """Remove an object, detaching every inbound and outbound link."""
        def body() -> int:
            victim_oid = oid if oid is not None else self._pick_oid()
            victim = self.view.get(victim_oid)
            dirty = {}
            # Outbound: remove our entries from targets' back references.
            for index, target in enumerate(victim.oref):
                if target is None or target == victim_oid:
                    continue
                target_obj = self.view.get(target)
                target_obj.back_refs.remove((victim_oid, index))
                dirty[target] = None
            # Inbound: NULL every reference that points at the victim.
            for source, index in list(victim.back_refs):
                if source == victim_oid:
                    continue
                source_obj = self.view.get(source)
                if source_obj.oref[index] == victim_oid:
                    source_obj.oref[index] = None
                    dirty[source] = None
            self.view.remove_object(victim_oid)
            self._invalidate_caches()
            self._write_dirty(dirty)
            self._store_delete(victim_oid)
            self.session.flush()
            return 1 + len(dirty)
        return self._timed(GenericOperation.DELETE, body)

    def op_range_lookup(self, low: Optional[int] = None,
                        width: int = 10) -> OperationResult:
        """Fetch every owned object whose attribute is in [low, low+width)."""
        if not 1 <= width <= 100:
            raise WorkloadError(f"width must be in [1, 100], got {width}")

        def body() -> int:
            start = low if low is not None \
                else self.rng.randint(0, 100 - width)
            matches = [oid for oid in self.view.objects
                       if self._owns(oid)
                       and start <= attribute_of(oid) < start + width]
            # The whole match set in one round trip on batched engines.
            self.session.prefetch(matches)
            for match in matches:
                self.session.touch(match)
            return len(matches)
        return self._timed(GenericOperation.RANGE_LOOKUP, body)

    def op_sequential_scan(self) -> OperationResult:
        """Visit every owned object in physical order."""
        def body() -> int:
            order = [oid for oid in self.session.current_order()
                     if self._owns(oid)]
            for start in range(0, len(order), _SCAN_BATCH):
                chunk = order[start:start + _SCAN_BATCH]
                self.session.prefetch(chunk)
                for scanned in chunk:
                    self.session.touch(scanned)
            return len(order)
        return self._timed(GenericOperation.SEQUENTIAL_SCAN, body)

    def op_structure_traversal(self, entry: MixEntry) -> OperationResult:
        """BFS from a DIST5 root through the link structure, zero decode.

        Frontiers expand via :meth:`Session.traverse_refs_many`: engines
        with a link index answer each hop in one set-oriented round trip
        without decoding a single record blob (counted under the
        engine's ``decodes_avoided``); everywhere else the backend's
        read-and-filter loop runs.  Depth and ``max_visits`` bound the
        walk exactly like the transaction classes; the touched count is
        the number of distinct objects whose structure was visited.
        """
        def body() -> int:
            live = self._live_sorted()
            if not live:
                return 0
            drawn = entry.root_distribution(self.mix.dist5).draw(
                self.rng, 1, self.view.num_objects)
            root = live[(drawn - 1) % len(live)]
            visited = {root}
            frontier = [root]
            for _ in range(entry.resolved_depth):
                if not frontier or len(visited) >= entry.max_visits:
                    break
                next_frontier: List[int] = []
                # With pipelining on, the next frontier chunk's read is
                # already in flight while this loop filters the current
                # chunk; answers arrive in frontier order either way, so
                # the visit set is mode-invariant.
                for answers in self.session.iter_frontier_refs(frontier):
                    for targets in answers.values():
                        for target in targets:
                            if len(visited) >= entry.max_visits:
                                break
                            # Skip edges into objects a concurrent client
                            # deleted from this view; structure-only walks
                            # tolerate them like read misses.
                            if target not in visited \
                                    and target in self.view.objects:
                                visited.add(target)
                                next_frontier.append(target)
                frontier = next_frontier
            return len(visited)
        return self._timed(GenericOperation.STRUCTURE_TRAVERSAL, body)

    def run_operation(self, entry: MixEntry) -> OperationResult:
        """Execute one generic-operation entry."""
        if entry.is_transaction:
            raise WorkloadError(
                f"entry {entry.kind!r} is a transaction class")
        return self._dispatch[entry.kind](entry)

    # -- internals -------------------------------------------------------- #

    def _timed(self, operation: GenericOperation,
               body: Callable[[], int]) -> OperationResult:
        with self.session.measure() as span:
            touched = body()
        self.session.end_transaction()
        assert span.delta is not None
        return OperationResult(operation=operation,
                               objects_touched=touched,
                               io_reads=span.delta.io_reads,
                               io_writes=span.delta.io_writes,
                               sim_time=span.delta.sim_time,
                               wall_time=span.wall)

    def _pick_oid(self) -> int:
        oids = self._owned_sorted()
        return oids[self.rng.randint(0, len(oids) - 1)]

    def _record_for(self, oid: int) -> StoredObject:
        obj = self.view.get(oid)
        instance_size = self.view.schema.get(obj.cid).instance_size
        return StoredObject(oid=obj.oid, cid=obj.cid,
                            refs=tuple(obj.oref),
                            back_refs=tuple(obj.back_refs),
                            filler=instance_size)

    def _write_dirty(self, dirty: Dict[int, None]) -> None:
        """Write the final in-memory state of every dirty object back.

        Records are materialised *after* all of the operation's graph
        surgery, so an object rewired twice within one operation is
        written once, with its final state — a single batched round trip
        on engines that support it.  In tolerant mode records are
        written one by one so a row deleted by a concurrent client
        (counted as a ``write_conflict``) never aborts the batch.
        """
        records = [self._record_for(oid) for oid in dirty]
        if not self.tolerate_conflicts:
            self.session.write_records(records)
            return
        for record in records:
            try:
                self.session.write_record(record)
            except UnknownObject:
                self.write_conflicts += 1

    def _store_insert(self, record: StoredObject) -> None:
        try:
            self.session.insert_record(record)
        except StorageError:
            if not self.tolerate_conflicts:
                raise
            self.write_conflicts += 1

    def _store_delete(self, oid: int) -> None:
        try:
            self.session.delete_record(oid)
        except UnknownObject:
            if not self.tolerate_conflicts:
                raise
            self.write_conflicts += 1

    def _maybe_auto_reorganize(self) -> None:
        """Reorganize after a transaction when the policy asks for it."""
        if not self.policy.wants_reorganization():
            return
        context = PlacementContext(sizes=self.view.record_sizes(),
                                   page_size=self.session.store.page_size)
        placement = self.policy.propose_placement(
            self.session.current_order(), context)
        if placement is not None:
            self.session.store.reorganize(
                placement.order, aligned_groups=placement.aligned_groups)


# ---------------------------------------------------------------------- #
# The runner
# ---------------------------------------------------------------------- #

class ScenarioRunner:
    """Executes a :class:`Scenario` — in-process or as OS processes.

    In-process (:meth:`run`), the scenario's clients interleave
    round-robin against one shared engine, exactly as the legacy
    multi-user runner did — but over *any* mix.  As processes
    (:meth:`run_processes`), each client becomes a worker of the
    process-parallel subsystem: shared WAL storage for backends with the
    ``concurrent`` capability, per-worker replicas otherwise.
    """

    def __init__(self, database: OCBDatabase, scenario: Scenario,
                 store: Optional[object] = None,
                 policy: Optional[ClusteringPolicy] = None) -> None:
        self.database = database
        self.scenario = scenario
        self.mix = scenario.mix
        self.policy = policy or NoClustering()
        self._store = store

    # -- in-process execution --------------------------------------------- #

    def _resolve_engine(self):
        """The shared engine every in-process client drives."""
        if self._store is not None:
            store = self._store
            if isinstance(store, Session):
                store = store.store
            if getattr(store, "object_count", 0) == 0:
                self.database.load_into(store)
                store.reset_stats()
            return store
        session = Session.for_database(
            self.database, self.scenario.backend,
            backend_options=dict(self.scenario.backend_options),
            policy=self.policy, batch=self.scenario.batch)
        return session.store

    def build_executors(self, engine) -> List[ClientExecutor]:
        """One executor per client over the shared *engine*.

        Mutating multi-client scenarios give each client a private
        replica of the object graph (its logical view — see the module
        docs); read-only scenarios share the generated database.
        """
        scenario = self.scenario
        partitioned = scenario.partitioned
        executors = []
        for client in range(scenario.clients):
            view = copy.deepcopy(self.database) if partitioned \
                else self.database
            session = Session(engine, policy=self.policy,
                              tref_table=view.tref_table(),
                              catalog=view.catalog(),
                              batch=scenario.batch,
                              lazy=scenario.lazy,
                              pipeline=scenario.pipeline)
            executors.append(ClientExecutor(
                view, self.mix, session, client_id=client,
                total_clients=scenario.clients, seed=scenario.seed,
                partitioned=partitioned,
                tolerate_conflicts=partitioned))
        return executors

    def run(self) -> ScenarioReport:
        """Round-robin the clients' cold then warm slots in-process."""
        scenario = self.scenario
        engine = self._resolve_engine()
        executors = self.build_executors(engine)
        cold = [ScenarioCollector("cold") for _ in executors]
        warm = [ScenarioCollector("warm") for _ in executors]
        started = time.perf_counter()
        if trace.enabled:
            with trace.span("scenario.phase", phase="cold",
                            scenario=self.mix.name):
                for _ in range(scenario.cold_ops):
                    for executor, collector in zip(executors, cold):
                        executor.step(collector)
            with trace.span("scenario.phase", phase="warm",
                            scenario=self.mix.name):
                for _ in range(scenario.warm_ops):
                    for executor, collector in zip(executors, warm):
                        executor.step(collector)
        else:
            for _ in range(scenario.cold_ops):
                for executor, collector in zip(executors, cold):
                    executor.step(collector)
            for _ in range(scenario.warm_ops):
                for executor, collector in zip(executors, warm):
                    executor.step(collector)
        elapsed = time.perf_counter() - started
        clients = [
            ClientScenarioReport(
                client_id=executor.client_id,
                cold=cold_collector.phase,
                warm=warm_collector.phase,
                read_misses=executor.read_misses,
                write_conflicts=executor.write_conflicts)
            for executor, cold_collector, warm_collector
            in zip(executors, cold, warm)]
        backend_name = getattr(engine, "name", type(engine).__name__)
        stats = engine.stats() if hasattr(engine, "stats") else {}
        if clients and stats.get("busy_retries"):
            # A single shared connection cannot collide with itself, but
            # surface whatever the engine accounted rather than hide it.
            clients[0].busy_retries += int(stats["busy_retries"])
            clients[0].busy_wait_seconds += float(
                stats.get("busy_wait_seconds", 0.0) or 0.0)
        if clients and stats.get("remote_reads"):
            # One shared engine, one (optional) home shard: attribute
            # the shard-crossing count like the busy counters above.
            clients[0].remote_reads += int(stats["remote_reads"])
        return ScenarioReport(
            scenario_name=self.mix.name,
            clients=clients,
            backend_name=backend_name,
            mode="interleaved",
            elapsed_seconds=elapsed,
            executed_parallel=False,
            sql_round_trips=int(stats.get("sql_round_trips", 0) or 0),
            records_decoded=int(stats.get("records_decoded", 0) or 0),
            decodes_avoided=int(stats.get("decodes_avoided", 0) or 0),
            max_inflight_reads=int(stats.get("max_inflight_reads", 0) or 0),
            concurrent_batches=int(stats.get("concurrent_batches", 0) or 0),
            pool_wait_seconds=float(
                stats.get("pool_wait_seconds", 0.0) or 0.0))

    # -- process execution ------------------------------------------------ #

    def run_processes(self, config: Optional[object] = None
                      ) -> ScenarioReport:
        """Run the scenario's clients as real OS processes.

        The backend must be a registered name (it is re-resolved on the
        worker side of the fork).  Delegates storage setup, spawning and
        contention accounting to :class:`~repro.parallel.runner.ParallelRunner`
        with the mix threaded through the worker specs.  A live engine
        or a clustering policy cannot cross the process boundary, so a
        runner constructed with either refuses loudly instead of
        silently running something different from :meth:`run`.
        """
        from repro.parallel.runner import ParallelRunner

        if self._store is not None:
            raise WorkloadError(
                "run_processes() re-resolves the scenario's backend name "
                "in every worker process; a live engine instance cannot "
                "cross the process boundary — drop the store argument "
                "and set Scenario.backend/backend_options instead")
        if not isinstance(self.policy, NoClustering):
            raise WorkloadError(
                "run_processes() does not support clustering policies; "
                "worker processes would each need their own policy "
                "instance — run the scenario in-process instead")
        scenario = self.scenario
        carrier = WorkloadParameters(
            cold_n=scenario.cold_ops, hot_n=scenario.warm_ops,
            clients=scenario.clients, seed=scenario.seed)
        runner = ParallelRunner(
            self.database, scenario.backend, carrier, config=config,
            backend_options=dict(scenario.backend_options),
            batch=scenario.batch, mix=self.mix,
            lazy=scenario.lazy, pipeline=scenario.pipeline)
        parallel_report = runner.run()
        clients = [worker.scenario_report
                   for worker in parallel_report.workers
                   if worker.scenario_report is not None]
        sql_round_trips = sum(
            int((worker.backend_stats or {}).get("sql_round_trips", 0) or 0)
            for worker in parallel_report.workers)
        records_decoded = sum(
            int((worker.backend_stats or {}).get("records_decoded", 0) or 0)
            for worker in parallel_report.workers)
        decodes_avoided = sum(
            int((worker.backend_stats or {}).get("decodes_avoided", 0) or 0)
            for worker in parallel_report.workers)
        concurrent_batches = sum(
            int((worker.backend_stats or {}).get("concurrent_batches", 0)
                or 0)
            for worker in parallel_report.workers)
        worker_resources = [
            dict(worker.resource_usage, worker=worker.worker_id)
            for worker in parallel_report.workers
            if worker.resource_usage]
        return ScenarioReport(
            scenario_name=self.mix.name,
            clients=clients,
            backend_name=parallel_report.backend_name,
            mode=parallel_report.mode,
            elapsed_seconds=parallel_report.elapsed_seconds,
            executed_parallel=parallel_report.executed_parallel,
            sql_round_trips=sql_round_trips,
            records_decoded=records_decoded,
            decodes_avoided=decodes_avoided,
            max_inflight_reads=parallel_report.max_inflight_reads,
            concurrent_batches=concurrent_batches,
            pool_wait_seconds=parallel_report.pool_wait_seconds,
            worker_resources=worker_resources)

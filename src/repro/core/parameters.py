"""OCB parameters — Tables 1 and 2 of the paper, as validated dataclasses.

:class:`DatabaseParameters` carries everything Table 1 lists (NC, MAXNREF,
BASESIZE, NO, NREFT, INFCLASS/SUPCLASS, INFREF/SUPREF, DIST1..DIST4) plus
the two "set up a priori" escape hatches the paper's text allows: fixed
reference types and fixed class references.  :class:`WorkloadParameters`
carries Table 2 (depths, COLDN/HOTN, THINK, the four occurrence
probabilities, RAND5, CLIENTN).

Reference *types* get semantics through :class:`ReferenceTypeSpec`: a type
may be acyclic (the consistency step deletes references that would close a
cycle in its graph) and may be an inheritance type (ancestors contribute
their BASESIZE to subclass instance sizes).  The default mapping for
NREFT = 4 is: type 1 = inheritance, type 2 = composition (both acyclic),
types 3-4 = free associations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.errors import ParameterError
from repro.rand.distributions import Distribution, UniformDistribution
from repro.rand.lewis_payne import DEFAULT_SEED

__all__ = [
    "ReferenceTypeSpec",
    "default_reference_types",
    "DatabaseParameters",
    "WorkloadParameters",
]

_PROBABILITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ReferenceTypeSpec:
    """Semantics of one OCB reference type."""

    type_id: int
    name: str
    acyclic: bool = False
    is_inheritance: bool = False

    def __post_init__(self) -> None:
        if self.type_id < 1:
            raise ParameterError(f"type_id must be >= 1, got {self.type_id}")
        if self.is_inheritance and not self.acyclic:
            raise ParameterError(
                f"inheritance type {self.type_id} must be acyclic")


def default_reference_types(nreft: int) -> Tuple[ReferenceTypeSpec, ...]:
    """The default semantics ladder for ``NREFT`` reference types.

    Type 1 is inheritance, type 2 composition, the rest plain associations —
    matching the paper's examples ("a type of inheritance, aggregation,
    user association, etc.").
    """
    if nreft < 1:
        raise ParameterError(f"NREFT must be >= 1, got {nreft}")
    specs = []
    for type_id in range(1, nreft + 1):
        if type_id == 1 and nreft >= 2:
            specs.append(ReferenceTypeSpec(type_id, "inheritance",
                                           acyclic=True, is_inheritance=True))
        elif type_id == 2:
            specs.append(ReferenceTypeSpec(type_id, "composition", acyclic=True))
        else:
            specs.append(ReferenceTypeSpec(type_id, f"association-{type_id}"))
    return tuple(specs)


def _per_class(value: Union[int, Tuple[int, ...]], count: int,
               label: str, minimum: int) -> Tuple[int, ...]:
    """Broadcast a scalar or validate a per-class tuple."""
    if isinstance(value, int):
        values: Tuple[int, ...] = (value,) * count
    else:
        values = tuple(int(v) for v in value)
        if len(values) != count:
            raise ParameterError(
                f"{label} must have one entry per class ({count}), "
                f"got {len(values)}")
    for v in values:
        if v < minimum:
            raise ParameterError(f"{label} entries must be >= {minimum}, got {v}")
    return values


@dataclass(frozen=True)
class DatabaseParameters:
    """Table 1 of the paper — the OCB database parameters.

    Defaults are the paper's defaults (NC=20, MAXNREF=10, BASESIZE=50,
    NO=20000, NREFT=4, bounds covering everything, all Uniform).
    """

    num_classes: int = 20                                     # NC
    max_nref: Union[int, Tuple[int, ...]] = 10                # MAXNREF(i)
    base_size: Union[int, Tuple[int, ...]] = 50               # BASESIZE(i)
    num_objects: int = 20000                                  # NO
    num_ref_types: int = 4                                    # NREFT
    inf_class: int = 1                                        # INFCLASS
    sup_class: Optional[int] = None                           # SUPCLASS (None -> NC)
    inf_ref: int = 1                                          # INFREF
    sup_ref: Optional[int] = None                             # SUPREF (None -> NO)
    ref_zone: Optional[int] = None  # Relative bounds: [oid-zone, oid+zone].
    dist1: Distribution = field(default_factory=UniformDistribution)
    dist2: Distribution = field(default_factory=UniformDistribution)
    dist3: Distribution = field(default_factory=UniformDistribution)
    dist4: Distribution = field(default_factory=UniformDistribution)
    reference_types: Optional[Tuple[ReferenceTypeSpec, ...]] = None
    #: "The type of the references can be ... fixed a priori" — per-class
    #: tuples of reference type ids (overrides DIST1).
    fixed_tref: Optional[Tuple[Tuple[int, ...], ...]] = None
    #: "The class reference selection can be ... set up a priori" — per-class
    #: tuples of referenced class ids, 0/None for NIL (overrides DIST2).
    fixed_cref: Optional[Tuple[Tuple[Optional[int], ...], ...]] = None
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.num_classes < 1:
            raise ParameterError(f"NC must be >= 1, got {self.num_classes}")
        if self.num_objects < 0:
            raise ParameterError(f"NO must be >= 0, got {self.num_objects}")
        if self.num_ref_types < 1:
            raise ParameterError(f"NREFT must be >= 1, got {self.num_ref_types}")

        object.__setattr__(self, "max_nref",
                           _per_class(self.max_nref, self.num_classes,
                                      "MAXNREF", 0))
        object.__setattr__(self, "base_size",
                           _per_class(self.base_size, self.num_classes,
                                      "BASESIZE", 0))

        sup_class = self.num_classes if self.sup_class is None else self.sup_class
        object.__setattr__(self, "sup_class", sup_class)
        if not 0 <= self.inf_class <= sup_class <= self.num_classes:
            raise ParameterError(
                f"need 0 <= INFCLASS <= SUPCLASS <= NC, got "
                f"[{self.inf_class}, {sup_class}] with NC={self.num_classes}")

        sup_ref = self.num_objects if self.sup_ref is None else self.sup_ref
        object.__setattr__(self, "sup_ref", sup_ref)
        if self.num_objects and not 1 <= self.inf_ref <= max(sup_ref, 1):
            raise ParameterError(
                f"need 1 <= INFREF <= SUPREF, got [{self.inf_ref}, {sup_ref}]")
        if self.ref_zone is not None and self.ref_zone < 0:
            raise ParameterError(f"ref_zone must be >= 0, got {self.ref_zone}")

        ref_types = self.reference_types
        if ref_types is None:
            ref_types = default_reference_types(self.num_ref_types)
        else:
            ref_types = tuple(ref_types)
            ids = sorted(spec.type_id for spec in ref_types)
            if ids != list(range(1, self.num_ref_types + 1)):
                raise ParameterError(
                    f"reference_types ids must be 1..{self.num_ref_types}, "
                    f"got {ids}")
        object.__setattr__(self, "reference_types", ref_types)

        for label, fixed in (("fixed_tref", self.fixed_tref),
                             ("fixed_cref", self.fixed_cref)):
            if fixed is None:
                continue
            fixed = tuple(tuple(row) for row in fixed)
            object.__setattr__(self, label, fixed)
            if len(fixed) != self.num_classes:
                raise ParameterError(
                    f"{label} must have one row per class ({self.num_classes})")
            for cid, row in enumerate(fixed, start=1):
                expected = self.max_nref[cid - 1]
                if len(row) != expected:
                    raise ParameterError(
                        f"{label}[{cid}] must have MAXNREF={expected} entries, "
                        f"got {len(row)}")
        if self.fixed_tref is not None:
            for row in self.fixed_tref:
                for type_id in row:
                    if not 1 <= type_id <= self.num_ref_types:
                        raise ParameterError(
                            f"fixed_tref type id {type_id} outside "
                            f"1..{self.num_ref_types}")
        if self.fixed_cref is not None:
            for row in self.fixed_cref:
                for target in row:
                    if target is not None and not 0 <= target <= self.num_classes:
                        raise ParameterError(
                            f"fixed_cref class id {target} outside "
                            f"0..{self.num_classes}")

    # ------------------------------------------------------------------ #
    # Per-class accessors (1-based, like the paper)
    # ------------------------------------------------------------------ #

    def max_nref_for(self, cid: int) -> int:
        """MAXNREF(i) for class *cid* (1-based)."""
        return self.max_nref[cid - 1]

    def base_size_for(self, cid: int) -> int:
        """BASESIZE(i) for class *cid* (1-based)."""
        return self.base_size[cid - 1]

    def ref_type_spec(self, type_id: int) -> ReferenceTypeSpec:
        """The :class:`ReferenceTypeSpec` for a type id."""
        for spec in self.reference_types:  # type: ignore[union-attr]
            if spec.type_id == type_id:
                return spec
        raise ParameterError(f"unknown reference type {type_id}")

    def object_ref_bounds(self, oid: int) -> Tuple[int, int]:
        """The [INFREF, SUPREF] interval for references drawn from *oid*.

        With ``ref_zone`` set, the bounds are relative to the referencing
        object (Table 3's ``PartId ± RefZone``); otherwise absolute.
        """
        if self.ref_zone is not None:
            low = max(1, oid - self.ref_zone)
            high = min(self.num_objects, oid + self.ref_zone)
            return (low, high)
        return (self.inf_ref, min(self.sup_ref, self.num_objects))  # type: ignore[arg-type]


@dataclass(frozen=True)
class WorkloadParameters:
    """Table 2 of the paper — the OCB workload parameters."""

    set_depth: int = 3                 # SETDEPTH
    simple_depth: int = 3              # SIMDEPTH
    hierarchy_depth: int = 5           # HIEDEPTH
    stochastic_depth: int = 50         # STODEPTH
    cold_n: int = 1000                 # COLDN
    hot_n: int = 10000                 # HOTN
    think_time: float = 0.0            # THINK
    p_set: float = 0.25                # PSET
    p_simple: float = 0.25             # PSIMPLE
    p_hierarchy: float = 0.25          # PHIER
    p_stochastic: float = 0.25         # PSTOCH
    dist5: Distribution = field(default_factory=UniformDistribution)  # RAND5
    clients: int = 1                   # CLIENTN
    #: Probability of running a transaction "backwards" (the paper: all
    #: transactions can be reversed to ascend the graphs).  Default off.
    reverse_probability: float = 0.0
    #: Reference type followed by hierarchy traversals (None = drawn
    #: uniformly per transaction).
    hierarchy_ref_type: Optional[int] = None
    #: False reproduces the paper/OO1 accounting (duplicate visits count);
    #: True visits each object at most once per transaction.
    dedupe_visits: bool = False
    #: Safety valve against exponential breadth-first blow-ups.
    max_visits: int = 5000
    #: Workload RNG seed (None derives a stream from the database seed).
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        for label in ("set_depth", "simple_depth", "hierarchy_depth",
                      "stochastic_depth"):
            if getattr(self, label) < 0:
                raise ParameterError(f"{label} must be >= 0")
        for label in ("cold_n", "hot_n"):
            if getattr(self, label) < 0:
                raise ParameterError(f"{label} must be >= 0")
        if self.think_time < 0:
            raise ParameterError(f"THINK must be >= 0, got {self.think_time}")
        if self.clients < 1:
            raise ParameterError(f"CLIENTN must be >= 1, got {self.clients}")
        if not 0.0 <= self.reverse_probability <= 1.0:
            raise ParameterError("reverse_probability must be in [0, 1], got "
                                 f"{self.reverse_probability}")
        if self.max_visits < 1:
            raise ParameterError(f"max_visits must be >= 1, got {self.max_visits}")
        probabilities = (self.p_set, self.p_simple, self.p_hierarchy,
                         self.p_stochastic)
        for p in probabilities:
            if not 0.0 <= p <= 1.0:
                raise ParameterError(f"probabilities must be in [0, 1], got {p}")
        total = sum(probabilities)
        if abs(total - 1.0) > _PROBABILITY_TOLERANCE:
            raise ParameterError(
                f"PSET + PSIMPLE + PHIER + PSTOCH must sum to 1, got {total}")
        if self.hierarchy_ref_type is not None and self.hierarchy_ref_type < 1:
            raise ParameterError("hierarchy_ref_type must be >= 1, got "
                                 f"{self.hierarchy_ref_type}")

    @property
    def transactions_total(self) -> int:
        """COLDN + HOTN."""
        return self.cold_n + self.hot_n

    def probability_table(self) -> Tuple[Tuple[str, float], ...]:
        """(kind, probability) pairs in draw order."""
        return (("set", self.p_set), ("simple", self.p_simple),
                ("hierarchy", self.p_hierarchy),
                ("stochastic", self.p_stochastic))

"""The "fully generic OCB" operation set — now a scenario-layer shim.

Section 5 of the paper: *"OCB could be easily enhanced to become a fully
generic object-oriented benchmark ... by extending the transaction set so
that it includes a broader range of operations (namely operations we
discarded in the first place because they couldn't benefit from
clustering)."*  Those are exactly the operations the related-work section
catalogues and OCB's clustering-oriented workload dropped:

* **creation** (OO1's Insert), **update** (HyperModel's Editing),
  **deletion** (OO7's structural modifications), **range lookup** and
  **sequential scan** (HyperModel).

The implementations live in the declarative scenario layer
(:class:`~repro.core.scenario.ClientExecutor` — where they also run
partitioned across many clients); :class:`GenericOperationsRunner` is
the single-client shim that preserves the original API and its
byte-identical operation stream on the same seed (pinned by
``tests/core/test_shim_equivalence.py``).  :class:`GenericOperation`,
:class:`OperationResult` and :func:`attribute_of` are re-exported from
the scenario module, their new home.

The runner keeps the in-memory :class:`~repro.core.database.OCBDatabase`
and the persistent store in lockstep, so structural invariants
(``database.validate()``) hold after any sequence of operations — the
property-based tests exercise exactly that.  All *logical* metrics
(operation kinds drawn, objects touched) derive from the in-memory
database and the seeded RNG alone, so they are identical on every
backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.backends.base import Backend
from repro.clustering.base import ClusteringPolicy
from repro.core.database import OCBDatabase
from repro.core.scenario import (
    STREAM_GENERIC,
    ClientExecutor,
    GenericOperation,
    OperationResult,
    WorkloadMix,
    attribute_of,
)
from repro.core.session import Session
from repro.errors import WorkloadError
from repro.rand.lewis_payne import LewisPayne
from repro.store.storage import ObjectStore

__all__ = ["GenericOperation", "OperationResult", "GenericOperationsRunner",
           "attribute_of"]

#: Backward-compatible alias: the substream key now lives in the
#: scenario layer.
_STREAM_GENERIC = STREAM_GENERIC


class GenericOperationsRunner:
    """Executes the extended operation set against a loaded engine.

    ``store`` accepts everything the other runners do: a loaded
    :class:`~repro.store.storage.ObjectStore`, any
    :class:`~repro.backends.base.Backend`, a registered backend name
    (created and bulk-loaded on the spot), or a ready
    :class:`~repro.core.session.Session`.
    """

    def __init__(self, database: OCBDatabase,
                 store: Union[ObjectStore, Backend, Session, str],
                 policy: Optional[ClusteringPolicy] = None,
                 rng: Optional[LewisPayne] = None,
                 batch: Optional[bool] = None) -> None:
        self.database = database
        if isinstance(store, Session):
            if policy is not None and policy is not store.policy:
                raise WorkloadError(
                    "conflicting clustering policies: the Session already "
                    "owns one; pass the policy when constructing the "
                    "Session, not the runner")
            self.session = store
        elif store is None or isinstance(store, str):
            self.session = Session.for_database(database, store,
                                                policy=policy, batch=batch)
        else:
            self.session = Session(store, policy=policy, batch=batch)
        if self.session.object_count == 0:
            raise WorkloadError("bulk-load the database before running "
                                "generic operations")
        self.store = self.session.store
        self.policy = self.session.policy
        self._rng = rng or LewisPayne(
            database.parameters.seed).spawn(STREAM_GENERIC)
        self._executor = ClientExecutor(
            database, WorkloadMix.from_operation_weights(),
            self.session, rng=self._rng)

    # ------------------------------------------------------------------ #
    # Operations (delegated to the scenario executor)
    # ------------------------------------------------------------------ #

    def insert(self) -> OperationResult:
        """Create one object (class via DIST3, references via DIST4)."""
        return self._executor.op_insert()

    def update(self, oid: Optional[int] = None) -> OperationResult:
        """Redraw one reference of an object, fixing both back-ref sides."""
        return self._executor.op_update(oid)

    def delete(self, oid: Optional[int] = None) -> OperationResult:
        """Remove an object, detaching every inbound and outbound link."""
        return self._executor.op_delete(oid)

    def range_lookup(self, low: Optional[int] = None,
                     width: int = 10) -> OperationResult:
        """Fetch every object whose attribute falls in [low, low+width)."""
        return self._executor.op_range_lookup(low, width)

    def sequential_scan(self) -> OperationResult:
        """Visit every object in physical order."""
        return self._executor.op_sequential_scan()

    def run_mix(self, operations: int,
                weights: Optional[Dict[GenericOperation, float]] = None
                ) -> List[OperationResult]:
        """Run a weighted mix of the generic operations."""
        if operations < 0:
            raise WorkloadError(f"operations must be >= 0, got {operations}")
        # Falsy weights (None or {}) mean "use the default mix", exactly
        # as the pre-shim implementation's `weights or {...}` did.
        if weights and sum(weights.values()) <= 0:
            raise WorkloadError("operation weights must sum to > 0")
        mix = WorkloadMix.from_operation_weights(weights)
        executor = self._executor
        results: List[OperationResult] = []
        for _ in range(operations):
            entry = executor._guarded(executor.draw_entry(mix))
            results.append(executor.run_operation(entry))
        return results

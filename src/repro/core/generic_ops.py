"""The "fully generic OCB" operation set — the paper's future work.

Section 5 of the paper: *"OCB could be easily enhanced to become a fully
generic object-oriented benchmark ... by extending the transaction set so
that it includes a broader range of operations (namely operations we
discarded in the first place because they couldn't benefit from
clustering)."*  Those are exactly the operations the related-work section
catalogues and OCB's clustering-oriented workload dropped:

* **creation** (OO1's Insert) — :meth:`GenericOperationsRunner.insert`,
* **update** (HyperModel's Editing) — :meth:`~GenericOperationsRunner.update`
  redraws one reference, maintaining back references on both the old and
  the new target,
* **deletion** (OO7's structural modifications) —
  :meth:`~GenericOperationsRunner.delete` detaches every inbound and
  outbound link before removing the object,
* **range lookup** (HyperModel) — a predicate over a synthetic integer
  attribute, evaluated on an index with every match fetched through the
  store,
* **sequential scan** (HyperModel) — visit every object.

The runner keeps the in-memory :class:`~repro.core.database.OCBDatabase`
and the persistent :class:`~repro.store.storage.ObjectStore` in lockstep,
so structural invariants (``database.validate()``) hold after any sequence
of operations — the property-based tests exercise exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.core.database import OCBDatabase, OCBObject
from repro.errors import WorkloadError
from repro.rand.lewis_payne import LewisPayne
from repro.store.serializer import StoredObject
from repro.store.storage import ObjectStore

__all__ = ["GenericOperation", "OperationResult", "GenericOperationsRunner"]

_STREAM_GENERIC = 0x0CB0_00FF

#: Attribute used by range lookups: a pseudo-random but deterministic
#: percentile derived from the object id (Knuth's multiplicative hash).
def attribute_of(oid: int) -> int:
    """The synthetic ``hundred``-style attribute of an object (0..99)."""
    return ((oid * 2654435761) & 0xFFFFFFFF) % 100


class GenericOperation(str, Enum):
    """The extended operation kinds."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    RANGE_LOOKUP = "range_lookup"
    SEQUENTIAL_SCAN = "sequential_scan"


@dataclass(frozen=True)
class OperationResult:
    """Metrics of one generic operation."""

    operation: GenericOperation
    objects_touched: int
    io_reads: int
    io_writes: int
    sim_time: float
    wall_time: float


class GenericOperationsRunner:
    """Executes the extended operation set against a loaded store."""

    def __init__(self, database: OCBDatabase, store: ObjectStore,
                 policy: Optional[ClusteringPolicy] = None,
                 rng: Optional[LewisPayne] = None) -> None:
        if store.object_count == 0:
            raise WorkloadError("bulk-load the database before running "
                                "generic operations")
        self.database = database
        self.store = store
        self.policy = policy or NoClustering()
        self._rng = rng or LewisPayne(
            database.parameters.seed).spawn(_STREAM_GENERIC)

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def insert(self) -> OperationResult:
        """Create one object (class via DIST3, references via DIST4)."""
        def body() -> int:
            params = self.database.parameters
            oid = self.database.next_oid
            cid = params.dist3.draw(self._rng, 1, params.num_classes,
                                    center=oid)
            descriptor = self.database.schema.get(cid)
            obj = OCBObject(oid=oid, cid=cid,
                            oref=[None] * descriptor.max_nref)
            self.database.add_object(obj)
            touched = 1
            low, high = params.object_ref_bounds(
                min(oid, params.num_objects or oid))
            for index, _type_id, target_class in descriptor.references():
                if target_class is None:
                    continue
                iterator = self.database.schema.get(target_class).iterator
                if not iterator:
                    continue
                drawn = params.dist4.draw(self._rng, low, high, center=oid)
                target = iterator[(drawn - 1) % len(iterator)]
                if target == oid:
                    continue
                obj.oref[index] = target
                self.database.get(target).back_refs.append((oid, index))
                touched += self._sync_record(target)
            self.store.insert_object(self._record_for(oid))
            self.store.flush()
            return touched
        return self._timed(GenericOperation.INSERT, body)

    def update(self, oid: Optional[int] = None) -> OperationResult:
        """Redraw one reference of an object, fixing both back-ref sides."""
        def body() -> int:
            target_oid = oid if oid is not None else self._pick_oid()
            obj = self.database.get(target_oid)
            touched = 1
            slots = [i for i, t in enumerate(obj.oref) if t is not None]
            if not slots:
                # Nothing to rewire; still a (logical) attribute update.
                self._sync_record(target_oid)
                self.store.flush()
                return touched
            slot = slots[self._rng.randint(0, len(slots) - 1)]
            old_target = obj.oref[slot]
            descriptor = self.database.schema.get(obj.cid)
            target_class = descriptor.cref[slot]
            iterator = self.database.schema.get(target_class).iterator
            params = self.database.parameters
            low, high = params.object_ref_bounds(target_oid)
            drawn = params.dist4.draw(self._rng, low, high, center=target_oid)
            new_target = iterator[(drawn - 1) % len(iterator)]
            if new_target == old_target:
                self._sync_record(target_oid)
                self.store.flush()
                return touched
            obj.oref[slot] = new_target
            old_obj = self.database.get(old_target)
            old_obj.back_refs.remove((target_oid, slot))
            self.database.get(new_target).back_refs.append((target_oid, slot))
            touched += self._sync_record(target_oid)
            touched += self._sync_record(old_target)
            touched += self._sync_record(new_target)
            self.store.flush()
            return touched
        return self._timed(GenericOperation.UPDATE, body)

    def delete(self, oid: Optional[int] = None) -> OperationResult:
        """Remove an object, detaching every inbound and outbound link."""
        def body() -> int:
            victim_oid = oid if oid is not None else self._pick_oid()
            victim = self.database.get(victim_oid)
            touched = 1
            # Outbound: remove our entries from targets' back references.
            for index, target in enumerate(victim.oref):
                if target is None or target == victim_oid:
                    continue
                target_obj = self.database.get(target)
                target_obj.back_refs.remove((victim_oid, index))
                touched += self._sync_record(target)
            # Inbound: NULL every reference that points at the victim.
            for source, index in list(victim.back_refs):
                if source == victim_oid:
                    continue
                source_obj = self.database.get(source)
                if source_obj.oref[index] == victim_oid:
                    source_obj.oref[index] = None
                    touched += self._sync_record(source)
            self.database.remove_object(victim_oid)
            self.store.delete_object(victim_oid)
            self.store.flush()
            return touched
        return self._timed(GenericOperation.DELETE, body)

    def range_lookup(self, low: Optional[int] = None,
                     width: int = 10) -> OperationResult:
        """Fetch every object whose attribute falls in [low, low+width)."""
        if not 1 <= width <= 100:
            raise WorkloadError(f"width must be in [1, 100], got {width}")

        def body() -> int:
            start = low if low is not None \
                else self._rng.randint(0, 100 - width)
            matches = [oid for oid in self.database.objects
                       if start <= attribute_of(oid) < start + width]
            for oid in matches:
                self._access(oid)
            return len(matches)
        return self._timed(GenericOperation.RANGE_LOOKUP, body)

    def sequential_scan(self) -> OperationResult:
        """Visit every object in physical order."""
        def body() -> int:
            order = self.store.current_order()
            for oid in order:
                self._access(oid)
            return len(order)
        return self._timed(GenericOperation.SEQUENTIAL_SCAN, body)

    def run_mix(self, operations: int,
                weights: Optional[Dict[GenericOperation, float]] = None
                ) -> List[OperationResult]:
        """Run a weighted mix of the generic operations."""
        if operations < 0:
            raise WorkloadError(f"operations must be >= 0, got {operations}")
        weights = weights or {
            GenericOperation.INSERT: 0.25,
            GenericOperation.UPDATE: 0.35,
            GenericOperation.DELETE: 0.10,
            GenericOperation.RANGE_LOOKUP: 0.25,
            GenericOperation.SEQUENTIAL_SCAN: 0.05,
        }
        total = sum(weights.values())
        if total <= 0:
            raise WorkloadError("operation weights must sum to > 0")
        dispatch = {
            GenericOperation.INSERT: self.insert,
            GenericOperation.UPDATE: self.update,
            GenericOperation.DELETE: self.delete,
            GenericOperation.RANGE_LOOKUP: self.range_lookup,
            GenericOperation.SEQUENTIAL_SCAN: self.sequential_scan,
        }
        results: List[OperationResult] = []
        for _ in range(operations):
            u = self._rng.random() * total
            acc = 0.0
            chosen = GenericOperation.UPDATE
            for operation, weight in weights.items():
                acc += weight
                if u < acc:
                    chosen = operation
                    break
            if chosen is GenericOperation.DELETE and \
                    len(self.database.objects) <= 1:
                chosen = GenericOperation.INSERT  # Keep the DB populated.
            results.append(dispatch[chosen]())
        return results

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _timed(self, operation: GenericOperation, body) -> OperationResult:
        before = self.store.snapshot()
        start = time.perf_counter()
        touched = body()
        wall = time.perf_counter() - start
        delta = self.store.snapshot() - before
        self.policy.on_transaction_end()
        return OperationResult(operation=operation,
                               objects_touched=touched,
                               io_reads=delta.io_reads,
                               io_writes=delta.io_writes,
                               sim_time=delta.sim_time,
                               wall_time=wall)

    def _pick_oid(self) -> int:
        oids = sorted(self.database.objects)
        return oids[self._rng.randint(0, len(oids) - 1)]

    def _access(self, oid: int, source: Optional[int] = None) -> StoredObject:
        record = self.store.read_object(oid)
        self.policy.observe_access(source, oid, None)
        return record

    def _record_for(self, oid: int) -> StoredObject:
        obj = self.database.get(oid)
        instance_size = self.database.schema.get(obj.cid).instance_size
        return StoredObject(oid=obj.oid, cid=obj.cid,
                            refs=tuple(obj.oref),
                            back_refs=tuple(obj.back_refs),
                            filler=instance_size)

    def _sync_record(self, oid: int) -> int:
        """Write the current in-memory state of *oid* back to the store."""
        self.store.write_object(self._record_for(oid))
        return 1

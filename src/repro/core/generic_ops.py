"""The "fully generic OCB" operation set — the paper's future work.

Section 5 of the paper: *"OCB could be easily enhanced to become a fully
generic object-oriented benchmark ... by extending the transaction set so
that it includes a broader range of operations (namely operations we
discarded in the first place because they couldn't benefit from
clustering)."*  Those are exactly the operations the related-work section
catalogues and OCB's clustering-oriented workload dropped:

* **creation** (OO1's Insert) — :meth:`GenericOperationsRunner.insert`,
* **update** (HyperModel's Editing) — :meth:`~GenericOperationsRunner.update`
  redraws one reference, maintaining back references on both the old and
  the new target,
* **deletion** (OO7's structural modifications) —
  :meth:`~GenericOperationsRunner.delete` detaches every inbound and
  outbound link before removing the object,
* **range lookup** (HyperModel) — a predicate over a synthetic integer
  attribute, evaluated on an index with every match fetched through the
  store,
* **sequential scan** (HyperModel) — visit every object.

The runner executes through the unified execution kernel
(:class:`~repro.core.session.Session`), so the same operation stream
runs against the simulated store **or any registered backend** —
``GenericOperationsRunner(database, "sqlite")`` creates, bulk-loads and
drives a SQLite engine.  Range lookups and sequential scans announce
their match sets through the kernel's batched read path (one
``IN``-clause round trip per set on SQLite); mutations collect their
dirty records and write them back as a batch on engines with native
batched writes.

The runner keeps the in-memory :class:`~repro.core.database.OCBDatabase`
and the persistent store in lockstep, so structural invariants
(``database.validate()``) hold after any sequence of operations — the
property-based tests exercise exactly that.  All *logical* metrics
(operation kinds drawn, objects touched) derive from the in-memory
database and the seeded RNG alone, so they are identical on every
backend.
"""

from __future__ import annotations

from enum import Enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.backends.base import Backend
from repro.clustering.base import ClusteringPolicy
from repro.core.database import OCBDatabase, OCBObject
from repro.core.session import Session
from repro.errors import WorkloadError
from repro.rand.lewis_payne import LewisPayne
from repro.store.serializer import StoredObject
from repro.store.storage import ObjectStore

__all__ = ["GenericOperation", "OperationResult", "GenericOperationsRunner"]

_STREAM_GENERIC = 0x0CB0_00FF

#: Chunk size for sequential-scan prefetches (bounds cache growth).
_SCAN_BATCH = 256

#: Attribute used by range lookups: a pseudo-random but deterministic
#: percentile derived from the object id (Knuth's multiplicative hash).
def attribute_of(oid: int) -> int:
    """The synthetic ``hundred``-style attribute of an object (0..99)."""
    return ((oid * 2654435761) & 0xFFFFFFFF) % 100


class GenericOperation(str, Enum):
    """The extended operation kinds."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    RANGE_LOOKUP = "range_lookup"
    SEQUENTIAL_SCAN = "sequential_scan"


@dataclass(frozen=True)
class OperationResult:
    """Metrics of one generic operation."""

    operation: GenericOperation
    objects_touched: int
    io_reads: int
    io_writes: int
    sim_time: float
    wall_time: float


class GenericOperationsRunner:
    """Executes the extended operation set against a loaded engine.

    ``store`` accepts everything the other runners do: a loaded
    :class:`~repro.store.storage.ObjectStore`, any
    :class:`~repro.backends.base.Backend`, a registered backend name
    (created and bulk-loaded on the spot), or a ready
    :class:`~repro.core.session.Session`.
    """

    def __init__(self, database: OCBDatabase,
                 store: Union[ObjectStore, Backend, Session, str],
                 policy: Optional[ClusteringPolicy] = None,
                 rng: Optional[LewisPayne] = None,
                 batch: Optional[bool] = None) -> None:
        self.database = database
        if isinstance(store, Session):
            if policy is not None and policy is not store.policy:
                raise WorkloadError(
                    "conflicting clustering policies: the Session already "
                    "owns one; pass the policy when constructing the "
                    "Session, not the runner")
            self.session = store
        elif store is None or isinstance(store, str):
            self.session = Session.for_database(database, store,
                                                policy=policy, batch=batch)
        else:
            self.session = Session(store, policy=policy, batch=batch)
        if self.session.object_count == 0:
            raise WorkloadError("bulk-load the database before running "
                                "generic operations")
        self.store = self.session.store
        self.policy = self.session.policy
        self._rng = rng or LewisPayne(
            database.parameters.seed).spawn(_STREAM_GENERIC)

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def insert(self) -> OperationResult:
        """Create one object (class via DIST3, references via DIST4)."""
        def body() -> int:
            params = self.database.parameters
            oid = self.database.next_oid
            cid = params.dist3.draw(self._rng, 1, params.num_classes,
                                    center=oid)
            descriptor = self.database.schema.get(cid)
            obj = OCBObject(oid=oid, cid=cid,
                            oref=[None] * descriptor.max_nref)
            self.database.add_object(obj)
            dirty: Dict[int, None] = {}
            low, high = params.object_ref_bounds(
                min(oid, params.num_objects or oid))
            for index, _type_id, target_class in descriptor.references():
                if target_class is None:
                    continue
                iterator = self.database.schema.get(target_class).iterator
                if not iterator:
                    continue
                drawn = params.dist4.draw(self._rng, low, high, center=oid)
                target = iterator[(drawn - 1) % len(iterator)]
                if target == oid:
                    continue
                obj.oref[index] = target
                self.database.get(target).back_refs.append((oid, index))
                dirty[target] = None
            self._write_dirty(dirty)
            self.session.insert_record(self._record_for(oid))
            self.session.flush()
            return 1 + len(dirty)
        return self._timed(GenericOperation.INSERT, body)

    def update(self, oid: Optional[int] = None) -> OperationResult:
        """Redraw one reference of an object, fixing both back-ref sides."""
        def body() -> int:
            target_oid = oid if oid is not None else self._pick_oid()
            obj = self.database.get(target_oid)
            slots = [i for i, t in enumerate(obj.oref) if t is not None]
            if not slots:
                # Nothing to rewire; still a (logical) attribute update.
                self._write_dirty({target_oid: None})
                self.session.flush()
                return 1
            slot = slots[self._rng.randint(0, len(slots) - 1)]
            old_target = obj.oref[slot]
            descriptor = self.database.schema.get(obj.cid)
            target_class = descriptor.cref[slot]
            iterator = self.database.schema.get(target_class).iterator
            params = self.database.parameters
            low, high = params.object_ref_bounds(target_oid)
            drawn = params.dist4.draw(self._rng, low, high, center=target_oid)
            new_target = iterator[(drawn - 1) % len(iterator)]
            if new_target == old_target:
                self._write_dirty({target_oid: None})
                self.session.flush()
                return 1
            obj.oref[slot] = new_target
            old_obj = self.database.get(old_target)
            old_obj.back_refs.remove((target_oid, slot))
            self.database.get(new_target).back_refs.append((target_oid, slot))
            dirty = dict.fromkeys((target_oid, old_target, new_target))
            self._write_dirty(dirty)
            self.session.flush()
            return len(dirty)
        return self._timed(GenericOperation.UPDATE, body)

    def delete(self, oid: Optional[int] = None) -> OperationResult:
        """Remove an object, detaching every inbound and outbound link."""
        def body() -> int:
            victim_oid = oid if oid is not None else self._pick_oid()
            victim = self.database.get(victim_oid)
            dirty = {}
            # Outbound: remove our entries from targets' back references.
            for index, target in enumerate(victim.oref):
                if target is None or target == victim_oid:
                    continue
                target_obj = self.database.get(target)
                target_obj.back_refs.remove((victim_oid, index))
                dirty[target] = None
            # Inbound: NULL every reference that points at the victim.
            for source, index in list(victim.back_refs):
                if source == victim_oid:
                    continue
                source_obj = self.database.get(source)
                if source_obj.oref[index] == victim_oid:
                    source_obj.oref[index] = None
                    dirty[source] = None
            self.database.remove_object(victim_oid)
            self._write_dirty(dirty)
            self.session.delete_record(victim_oid)
            self.session.flush()
            return 1 + len(dirty)
        return self._timed(GenericOperation.DELETE, body)

    def range_lookup(self, low: Optional[int] = None,
                     width: int = 10) -> OperationResult:
        """Fetch every object whose attribute falls in [low, low+width)."""
        if not 1 <= width <= 100:
            raise WorkloadError(f"width must be in [1, 100], got {width}")

        def body() -> int:
            start = low if low is not None \
                else self._rng.randint(0, 100 - width)
            matches = [oid for oid in self.database.objects
                       if start <= attribute_of(oid) < start + width]
            # The whole match set in one round trip on batched engines.
            self.session.prefetch(matches)
            for match in matches:
                self.session.touch(match)
            return len(matches)
        return self._timed(GenericOperation.RANGE_LOOKUP, body)

    def sequential_scan(self) -> OperationResult:
        """Visit every object in physical order."""
        def body() -> int:
            order = self.session.current_order()
            for start in range(0, len(order), _SCAN_BATCH):
                chunk = order[start:start + _SCAN_BATCH]
                self.session.prefetch(chunk)
                for scanned in chunk:
                    self.session.touch(scanned)
            return len(order)
        return self._timed(GenericOperation.SEQUENTIAL_SCAN, body)

    def run_mix(self, operations: int,
                weights: Optional[Dict[GenericOperation, float]] = None
                ) -> List[OperationResult]:
        """Run a weighted mix of the generic operations."""
        if operations < 0:
            raise WorkloadError(f"operations must be >= 0, got {operations}")
        weights = weights or {
            GenericOperation.INSERT: 0.25,
            GenericOperation.UPDATE: 0.35,
            GenericOperation.DELETE: 0.10,
            GenericOperation.RANGE_LOOKUP: 0.25,
            GenericOperation.SEQUENTIAL_SCAN: 0.05,
        }
        total = sum(weights.values())
        if total <= 0:
            raise WorkloadError("operation weights must sum to > 0")
        dispatch = {
            GenericOperation.INSERT: self.insert,
            GenericOperation.UPDATE: self.update,
            GenericOperation.DELETE: self.delete,
            GenericOperation.RANGE_LOOKUP: self.range_lookup,
            GenericOperation.SEQUENTIAL_SCAN: self.sequential_scan,
        }
        results: List[OperationResult] = []
        for _ in range(operations):
            u = self._rng.random() * total
            acc = 0.0
            chosen = GenericOperation.UPDATE
            for operation, weight in weights.items():
                acc += weight
                if u < acc:
                    chosen = operation
                    break
            if chosen is GenericOperation.DELETE and \
                    len(self.database.objects) <= 1:
                chosen = GenericOperation.INSERT  # Keep the DB populated.
            results.append(dispatch[chosen]())
        return results

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _timed(self, operation: GenericOperation, body) -> OperationResult:
        with self.session.measure() as span:
            touched = body()
        self.session.end_transaction()
        assert span.delta is not None
        return OperationResult(operation=operation,
                               objects_touched=touched,
                               io_reads=span.delta.io_reads,
                               io_writes=span.delta.io_writes,
                               sim_time=span.delta.sim_time,
                               wall_time=span.wall)

    def _pick_oid(self) -> int:
        oids = sorted(self.database.objects)
        return oids[self._rng.randint(0, len(oids) - 1)]

    def _record_for(self, oid: int) -> StoredObject:
        obj = self.database.get(oid)
        instance_size = self.database.schema.get(obj.cid).instance_size
        return StoredObject(oid=obj.oid, cid=obj.cid,
                            refs=tuple(obj.oref),
                            back_refs=tuple(obj.back_refs),
                            filler=instance_size)

    def _write_dirty(self, dirty: Dict[int, None]) -> None:
        """Write the final in-memory state of every dirty object back.

        Records are materialised *after* all of the operation's graph
        surgery, so an object rewired twice within one operation is
        written once, with its final state — a single batched round trip
        on engines that support it.
        """
        self.session.write_records([self._record_for(oid) for oid in dirty])


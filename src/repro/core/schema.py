"""OCB schema model: classes instantiated from the CLASS metaclass (Fig. 1).

A :class:`ClassDescriptor` is one instantiation of the paper's ``CLASS``
metaclass: ``TRef`` (reference types), ``CRef`` (referenced classes),
``InstanceSize`` (BASESIZE plus inherited sizes), and the ``Iterator`` of
its objects.  :class:`Schema` bundles the NC descriptors with the
reference-type semantics and offers the graph queries the consistency step
and the workload need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.parameters import ReferenceTypeSpec
from repro.errors import GenerationError, ParameterError

__all__ = ["ClassDescriptor", "Schema"]


@dataclass
class ClassDescriptor:
    """One OCB class (an instantiation of the CLASS metaclass)."""

    cid: int
    max_nref: int
    base_size: int
    tref: List[int] = field(default_factory=list)
    cref: List[Optional[int]] = field(default_factory=list)
    instance_size: int = 0
    iterator: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cid < 1:
            raise ParameterError(f"class id must be >= 1, got {self.cid}")
        if self.max_nref < 0:
            raise ParameterError(f"MAXNREF must be >= 0, got {self.max_nref}")
        if self.base_size < 0:
            raise ParameterError(f"BASESIZE must be >= 0, got {self.base_size}")
        if not self.instance_size:
            self.instance_size = self.base_size

    def references(self) -> Iterator[Tuple[int, int, Optional[int]]]:
        """Yield ``(index, type_id, target_class_or_None)`` triples."""
        for index, (type_id, target) in enumerate(zip(self.tref, self.cref)):
            yield index, type_id, target

    @property
    def live_reference_count(self) -> int:
        """References that survived the consistency step (non-NIL)."""
        return sum(1 for target in self.cref if target is not None)

    @property
    def population(self) -> int:
        """Number of objects instantiated from this class."""
        return len(self.iterator)


class Schema:
    """The NC class descriptors plus reference-type semantics."""

    def __init__(self, classes: Sequence[ClassDescriptor],
                 reference_types: Sequence[ReferenceTypeSpec]) -> None:
        self._classes: Dict[int, ClassDescriptor] = {}
        for descriptor in classes:
            if descriptor.cid in self._classes:
                raise GenerationError(f"duplicate class id {descriptor.cid}")
            self._classes[descriptor.cid] = descriptor
        self._types: Dict[int, ReferenceTypeSpec] = {
            spec.type_id: spec for spec in reference_types}
        for descriptor in classes:
            for type_id in descriptor.tref:
                if type_id not in self._types:
                    raise GenerationError(
                        f"class {descriptor.cid} uses unknown reference "
                        f"type {type_id}")

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #

    @property
    def num_classes(self) -> int:
        """NC."""
        return len(self._classes)

    def class_ids(self) -> List[int]:
        """Sorted class ids."""
        return sorted(self._classes)

    def get(self, cid: int) -> ClassDescriptor:
        """Descriptor for class *cid*."""
        try:
            return self._classes[cid]
        except KeyError:
            raise GenerationError(f"unknown class id {cid}") from None

    def __iter__(self) -> Iterator[ClassDescriptor]:
        for cid in self.class_ids():
            yield self._classes[cid]

    def __contains__(self, cid: int) -> bool:
        return cid in self._classes

    def ref_type(self, type_id: int) -> ReferenceTypeSpec:
        """Semantics of a reference type id."""
        try:
            return self._types[type_id]
        except KeyError:
            raise GenerationError(f"unknown reference type {type_id}") from None

    def reference_types(self) -> List[ReferenceTypeSpec]:
        """All reference-type specs, sorted by id."""
        return [self._types[i] for i in sorted(self._types)]

    # ------------------------------------------------------------------ #
    # Graph queries
    # ------------------------------------------------------------------ #

    def typed_edges(self, type_id: int) -> Dict[int, List[int]]:
        """Class-level adjacency restricted to references of *type_id*."""
        adjacency: Dict[int, List[int]] = {}
        for descriptor in self:
            targets = [target for index, t, target in descriptor.references()
                       if t == type_id and target is not None]
            if targets:
                adjacency[descriptor.cid] = targets
        return adjacency

    def inheritance_parents(self, cid: int) -> List[int]:
        """Classes *cid* directly inherits from (via inheritance-typed refs)."""
        descriptor = self.get(cid)
        parents = []
        for _, type_id, target in descriptor.references():
            if target is None:
                continue
            if self.ref_type(type_id).is_inheritance:
                parents.append(target)
        return parents

    def inheritance_ancestors(self, cid: int) -> Set[int]:
        """All distinct inheritance ancestors of *cid* (excludes *cid*)."""
        ancestors: Set[int] = set()
        stack = list(self.inheritance_parents(cid))
        while stack:
            parent = stack.pop()
            if parent == cid or parent in ancestors:
                continue
            ancestors.add(parent)
            stack.extend(self.inheritance_parents(parent))
        return ancestors

    def has_cycle(self, type_id: int) -> bool:
        """Whether the class graph of *type_id* references contains a cycle."""
        adjacency = self.typed_edges(type_id)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[int, int] = {}

        def visit(node: int) -> bool:
            colour[node] = GREY
            for target in adjacency.get(node, ()):
                state = colour.get(target, WHITE)
                if state == GREY:
                    return True
                if state == WHITE and visit(target):
                    return True
            colour[node] = BLACK
            return False

        return any(visit(node) for node in adjacency
                   if colour.get(node, WHITE) == WHITE)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    def compute_instance_sizes(self) -> None:
        """Set ``InstanceSize = BASESIZE + Σ BASESIZE(ancestors)``.

        Equivalent to the paper's incremental "add BASESIZE to each
        subclass while browsing the inheritance graph", which is well
        defined because the graph is acyclic after the consistency step.
        """
        for descriptor in self:
            inherited = sum(self.get(a).base_size
                            for a in self.inheritance_ancestors(descriptor.cid))
            descriptor.instance_size = descriptor.base_size + inherited

    def total_population(self) -> int:
        """Total objects across all iterators (should equal NO)."""
        return sum(descriptor.population for descriptor in self)

    def describe(self) -> str:
        """Multi-line human-readable schema summary."""
        lines = [f"Schema: {self.num_classes} classes, "
                 f"{len(self._types)} reference types"]
        for descriptor in self:
            lines.append(
                f"  class {descriptor.cid}: MAXNREF={descriptor.max_nref} "
                f"BASESIZE={descriptor.base_size} "
                f"InstanceSize={descriptor.instance_size} "
                f"live_refs={descriptor.live_reference_count} "
                f"population={descriptor.population}")
        return "\n".join(lines)

"""Deterministic-function profiling: cProfile behind a module switch.

The tracer (:mod:`repro.obs.trace`) decomposes wall time into the spans
the code *chose* to instrument; the profiler answers the complementary
question — *which functions* burned the time — with zero instrumented
call sites, because :mod:`cProfile` hooks the interpreter itself.  It is
how the decode-free fast paths prove their claim: profile a decoded run
and a lazy run of the same mix and watch ``decode_object``'s cumulative
share collapse (:func:`cumulative_share`).

Zero overhead when off
----------------------

Profiling is **disabled by default** and gated exactly like the tracer:
the CLI only touches this module when ``--profile FILE`` was passed, so
an unprofiled run executes no profiler code at all — not even an import
of :mod:`cProfile`-adjacent machinery on the dispatch path.
``tests/obs/test_profiler.py`` pins this by replacing :func:`enable`
and :func:`disable` with spies and asserting a plain run never calls
them.

Collection
----------

:func:`enable` starts a global :class:`cProfile.Profile`;
:func:`disable` stops it and folds the raw stats into an immutable
:class:`ProfileReport` — per-function call counts, internal time and
cumulative time.  :func:`summary` renders the top-N rows by cumulative
time (the table the CLI prints to stderr) and :func:`write_json`
persists the report next to the benchmark documents.
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "enabled",
    "FunctionStat",
    "ProfileReport",
    "enable",
    "disable",
    "summary",
    "cumulative_share",
    "write_json",
    "load_report",
]

#: The one guard the CLI checks before touching the profiler.  Toggled
#: only by :func:`enable` / :func:`disable`.
enabled = False

_profile: Optional[cProfile.Profile] = None


@dataclass(frozen=True)
class FunctionStat:
    """One function's aggregate, in pstats vocabulary."""

    #: ``filename:lineno(function)`` — basename'd so reports from
    #: different checkouts diff cleanly.
    name: str
    #: All calls, including recursive re-entries.
    ncalls: int
    #: Primitive (non-recursive) calls.
    primitive_calls: int
    #: Seconds spent in the function body itself.
    tottime: float
    #: Seconds including everything called beneath it.
    cumtime: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ncalls": self.ncalls,
            "primitive_calls": self.primitive_calls,
            "tottime": self.tottime,
            "cumtime": self.cumtime,
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "FunctionStat":
        return cls(name=str(spec["name"]),
                   ncalls=int(spec["ncalls"]),
                   primitive_calls=int(spec["primitive_calls"]),
                   tottime=float(spec["tottime"]),
                   cumtime=float(spec["cumtime"]))


@dataclass(frozen=True)
class ProfileReport:
    """An immutable snapshot of one profiled section.

    ``functions`` is sorted by cumulative time, descending — index 0 is
    where the run actually went.
    """

    functions: Tuple[FunctionStat, ...]
    #: Total internal time across every function (pstats' ``total_tt``).
    total_seconds: float

    def to_dict(self) -> dict:
        return {
            "total_seconds": self.total_seconds,
            "functions": [stat.to_dict() for stat in self.functions],
        }


def _format_name(filename: str, line: int, func: str) -> str:
    """pstats' ``filename:lineno(function)``, with the path basename'd."""
    if filename == "~":          # built-ins: pstats' placeholder file
        return func
    return f"{os.path.basename(filename)}:{line}({func})"


def enable() -> None:
    """Start profiling; re-enabling restarts with a fresh profile."""
    global enabled, _profile
    if _profile is not None:
        _profile.disable()
    _profile = cProfile.Profile()
    enabled = True
    _profile.enable()


def disable() -> Optional[ProfileReport]:
    """Stop profiling; returns the report (``None`` if never enabled)."""
    global enabled, _profile
    profile, _profile = _profile, None
    enabled = False
    if profile is None:
        return None
    profile.disable()
    stats = pstats.Stats(profile)
    functions = [
        FunctionStat(name=_format_name(filename, line, func),
                     ncalls=nc, primitive_calls=cc,
                     tottime=tt, cumtime=ct)
        for (filename, line, func), (cc, nc, tt, ct, _callers)
        in stats.stats.items()  # type: ignore[attr-defined]
    ]
    functions.sort(key=lambda stat: stat.cumtime, reverse=True)
    return ProfileReport(functions=tuple(functions),
                         total_seconds=float(stats.total_tt))  # type: ignore[attr-defined]


def summary(report: Optional[ProfileReport], top: int = 15
            ) -> List[Tuple[str, int, float, float]]:
    """Top-N ``(name, ncalls, tottime, cumtime)`` rows by cumulative time.

    The frame that *contains* everything (the dispatch wrapper) is as
    uninteresting as it is dominant, so rows whose cumulative time is
    within 0.1 % of each other keep their relative order — the sort is
    already done by :func:`disable`.
    """
    if report is None:
        return []
    return [(stat.name, stat.ncalls, stat.tottime, stat.cumtime)
            for stat in report.functions[:max(0, top)]]


def cumulative_share(report: Optional[ProfileReport], needle: str) -> float:
    """Largest matching function's cumulative time over the run total.

    ``needle`` is substring-matched against the formatted name
    (``serializer.py:…(decode_object)`` matches ``decode_object``).  The
    *largest* match is used rather than a sum because cumulative times
    of a caller and its callee overlap.  Returns 0.0 when nothing
    matches or the run recorded no time.
    """
    if report is None or report.total_seconds <= 0.0:
        return 0.0
    matches = [stat.cumtime for stat in report.functions
               if needle in stat.name]
    if not matches:
        return 0.0
    return max(matches) / report.total_seconds


def write_json(report: ProfileReport, path: str, top: int = 200) -> None:
    """Persist the report's top-N functions as a JSON document.

    A full run touches thousands of functions; the default cap keeps the
    artifact reviewable while still dwarfing any plausible hot set.
    """
    document = {
        "total_seconds": report.total_seconds,
        "functions": [stat.to_dict()
                      for stat in report.functions[:max(0, top)]],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> ProfileReport:
    """Rebuild a (possibly truncated) report from :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    functions = tuple(FunctionStat.from_dict(entry)
                      for entry in spec.get("functions", ()))
    return ProfileReport(functions=functions,
                         total_seconds=float(spec.get("total_seconds", 0.0)))

"""Resource monitoring without psutil: CPU time, RSS, system context.

:class:`ResourceMonitor` is a background sampler thread any runner can
wrap around a measured section: CPU time comes from :func:`os.times`
(user + system, *including reaped children* — so a coordinator's
monitor accounts its worker processes once they are joined), RSS from
``/proc/self/status`` (``VmRSS``) with a
:func:`resource.getrusage` fallback where procfs is unavailable.  The
result folds into every report as peak/mean RSS and CPU utilisation
alongside the latency percentiles — the methodology Darmont's survey
asks of a trustworthy benchmark: resource usage recorded *next to*
response time, not in a separate terminal.

:func:`system_info` collects the run context a persisted result needs
to be comparable later: git revision, platform, Python version, CPU
count, hostname.
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["ResourceUsage", "ResourceMonitor", "system_info"]

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None  # type: ignore[assignment]


def _rss_kb() -> Optional[int]:
    """Current RSS in kB, or the process peak when only that is known."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    if _resource is not None:
        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        # Linux reports kB; macOS reports bytes.
        divisor = 1024 if platform.system() == "Darwin" else 1
        return int(usage.ru_maxrss // divisor) or None
    return None


def _cpu_seconds() -> float:
    """This process's CPU time, children included once reaped."""
    times = os.times()
    return times.user + times.system + times.children_user \
        + times.children_system


@dataclass(frozen=True)
class ResourceUsage:
    """What one monitored section consumed."""

    wall_seconds: float
    cpu_seconds: float
    peak_rss_kb: int
    mean_rss_kb: float
    samples: int

    @property
    def cpu_utilization(self) -> float:
        """CPU seconds per wall second (can exceed 1.0 with children)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cpu_seconds / self.wall_seconds

    def to_dict(self) -> dict:
        """Flat JSON-ready mapping (the report emission shape)."""
        return {
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "cpu_utilization": self.cpu_utilization,
            "peak_rss_kb": self.peak_rss_kb,
            "mean_rss_kb": self.mean_rss_kb,
            "samples": self.samples,
        }


class ResourceMonitor:
    """Background sampler: start, run the workload, stop, read usage.

    Usable as a context manager::

        with ResourceMonitor() as monitor:
            run_the_benchmark()
        print(monitor.usage.peak_rss_kb)

    The sampler thread is a daemon and wakes every ``interval`` seconds;
    one synchronous sample is always taken at :meth:`start` and one at
    :meth:`stop`, so even a section shorter than the interval reports a
    real peak.
    """

    def __init__(self, interval: float = 0.05) -> None:
        if interval <= 0.0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = interval
        self.usage: Optional[ResourceUsage] = None
        self._samples: List[int] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_wall = 0.0
        self._started_cpu = 0.0

    # -- lifecycle ------------------------------------------------------- #

    def start(self) -> "ResourceMonitor":
        """Begin sampling (idempotent start is an error)."""
        if self._thread is not None:
            raise RuntimeError("monitor already started")
        self._stop.clear()
        self._samples = []
        self.usage = None
        self._started_wall = time.perf_counter()
        self._started_cpu = _cpu_seconds()
        self._sample()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="ocb-resource-monitor")
        self._thread.start()
        return self

    def stop(self) -> ResourceUsage:
        """End sampling and fold the samples into a :class:`ResourceUsage`."""
        if self._thread is None:
            raise RuntimeError("monitor was never started")
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._sample()
        wall = time.perf_counter() - self._started_wall
        cpu = max(0.0, _cpu_seconds() - self._started_cpu)
        samples = [s for s in self._samples if s is not None]
        peak = max(samples) if samples else 0
        mean = sum(samples) / len(samples) if samples else 0.0
        self.usage = ResourceUsage(wall_seconds=wall, cpu_seconds=cpu,
                                   peak_rss_kb=peak, mean_rss_kb=mean,
                                   samples=len(samples))
        return self.usage

    def __enter__(self) -> "ResourceMonitor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- internals ------------------------------------------------------- #

    def _sample(self) -> None:
        rss = _rss_kb()
        if rss is not None:
            self._samples.append(rss)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample()


# ---------------------------------------------------------------------- #
# Run context
# ---------------------------------------------------------------------- #

def _git_revision() -> Optional[str]:
    """The working tree's git revision, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5.0, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def system_info() -> Dict[str, object]:
    """The context a persisted benchmark result needs to be comparable."""
    try:
        hostname = socket.gethostname()
    except OSError:  # pragma: no cover - degenerate environments
        hostname = "unknown"
    return {
        "git_rev": _git_revision(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
        "hostname": hostname,
    }

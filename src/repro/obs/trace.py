"""Lightweight per-operation tracing: spans, events, a ring buffer, JSONL.

The tracer answers the question every benchmark report leaves open:
*where did the wall time actually go* — record decode vs SQL round trip
vs busy-wait backoff vs think time.  Instrumented call sites live in the
kernel (:meth:`repro.core.session.Session.measure`), the SQLite
backend's query paths, the scenario executor and the process-parallel
worker; each one emits a named record with free-form attributes.

Zero overhead when off
----------------------

Tracing is **disabled by default** and every instrumented call site is
guarded by the module flag::

    from repro.obs import trace
    ...
    if trace.enabled:
        trace.emit("sqlite.read_many", wall, oids=len(chunk))

so a traced-off run executes no tracer code at all — not even an empty
function call — on the hot paths the kernel batching work optimized.
``tests/obs/test_trace.py`` pins this by replacing :func:`emit` and
:func:`span` with spies and asserting a full ``ocb run`` never calls
them.

Two emission styles
-------------------

* :func:`emit` — post-hoc: the caller already measured the wall time
  (usually through :class:`~repro.core.session.Measurement`) and
  reports it.  The cheap style for hot paths.
* :func:`span` — a context manager for structural sections (a protocol
  phase, one scenario operation, worker setup): it times the body and
  tracks nesting depth, so records emitted inside carry ``depth + 1``
  and a JSONL trace reconstructs the call tree.

Collection
----------

:func:`enable` installs a ring-buffered :class:`TraceCollector`
(bounded memory, oldest records dropped) and, optionally, a
:class:`JsonlSink` that appends every record to a file as one JSON
object per line — the ``--trace FILE`` flag of the CLI.  :func:`summary`
folds the collector into per-name count/total/mean rows.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "enabled",
    "TraceRecord",
    "TraceCollector",
    "JsonlSink",
    "enable",
    "disable",
    "emit",
    "span",
    "active_collector",
    "summary",
]

#: The one guard every instrumented call site checks before touching the
#: tracer.  Toggled only by :func:`enable` / :func:`disable`.
enabled = False

#: Default ring-buffer capacity (records, not bytes).
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class TraceRecord:
    """One completed span or event."""

    name: str
    #: Wall-clock duration in seconds (0.0 for instantaneous events).
    wall_seconds: float
    #: Nesting depth at emission time (0 = top level).
    depth: int
    #: ``time.time()`` at emission — wall timestamps order a JSONL file.
    timestamp: float
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready mapping (the JSONL line format)."""
        return {
            "name": self.name,
            "wall_ms": self.wall_seconds * 1e3,
            "depth": self.depth,
            "ts": self.timestamp,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, spec: Dict[str, object]) -> "TraceRecord":
        """Rebuild from a JSONL line's mapping."""
        return cls(name=str(spec["name"]),
                   wall_seconds=float(spec["wall_ms"]) / 1e3,  # type: ignore
                   depth=int(spec["depth"]),  # type: ignore
                   timestamp=float(spec["ts"]),  # type: ignore
                   attrs=dict(spec.get("attrs") or {}))  # type: ignore


class TraceCollector:
    """A bounded, thread-safe ring buffer of :class:`TraceRecord`.

    ``capacity`` bounds memory: the collector keeps the newest records
    and counts what it dropped (``dropped``), so a million-operation run
    with tracing on cannot exhaust memory — the JSONL sink is the
    unbounded archive, the ring buffer the live window.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records: "deque[TraceRecord]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total = 0

    def record(self, record: TraceRecord) -> None:
        """Append one record (oldest evicted beyond capacity)."""
        with self._lock:
            self._records.append(record)
            self.total += 1

    @property
    def dropped(self) -> int:
        """Records evicted by the ring buffer."""
        return max(0, self.total - len(self._records))

    def records(self) -> List[TraceRecord]:
        """A snapshot of the buffered records, oldest first."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


class JsonlSink:
    """Appends every record to *path*, one JSON object per line."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self.written = 0

    def write(self, record: TraceRecord) -> None:
        """Serialize one record as a JSONL line."""
        line = json.dumps(record.to_dict(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self.written += 1

    def close(self) -> None:
        """Flush and release the file handle."""
        with self._lock:
            self._handle.close()


def read_jsonl(path: str) -> List[TraceRecord]:
    """Parse a JSONL trace file back into records."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(TraceRecord.from_dict(json.loads(line)))
    return records


# ---------------------------------------------------------------------- #
# Module state
# ---------------------------------------------------------------------- #

_collector: Optional[TraceCollector] = None
_sink: Optional[JsonlSink] = None
_local = threading.local()


def _depth() -> int:
    return getattr(_local, "depth", 0)


def enable(collector: Optional[TraceCollector] = None,
           sink_path: Optional[str] = None) -> TraceCollector:
    """Turn tracing on; returns the active collector.

    Re-enabling replaces the collector and sink (the previous sink is
    closed).  ``sink_path`` additionally streams every record to a JSONL
    file.
    """
    global enabled, _collector, _sink
    if _sink is not None:
        _sink.close()
    _collector = collector or TraceCollector()
    _sink = JsonlSink(sink_path) if sink_path else None
    enabled = True
    return _collector


def disable() -> Optional[TraceCollector]:
    """Turn tracing off; returns the collector that was active."""
    global enabled, _collector, _sink
    enabled = False
    collector, _collector = _collector, None
    if _sink is not None:
        _sink.close()
        _sink = None
    return collector


def active_collector() -> Optional[TraceCollector]:
    """The collector records are flowing into (``None`` when off)."""
    return _collector


def emit(name: str, wall_seconds: float = 0.0, **attrs: object) -> None:
    """Record one already-measured span (or an instantaneous event).

    Callers on hot paths must guard with ``if trace.enabled:`` — this
    function also no-ops when tracing is off, but the guard is what
    keeps the disabled cost at a single attribute read.
    """
    if not enabled:
        return
    record = TraceRecord(name=name, wall_seconds=wall_seconds,
                         depth=_depth(), timestamp=time.time(),
                         attrs=attrs)
    if _collector is not None:
        _collector.record(record)
    if _sink is not None:
        _sink.write(record)


@contextmanager
def span(name: str, **attrs: object) -> Iterator[None]:
    """Time a structural section; nested emissions carry ``depth + 1``.

    The record is emitted on exit with the measured wall time and the
    depth the span was *entered* at, so a JSONL file reconstructs the
    call tree by depth.
    """
    if not enabled:
        yield
        return
    entered = _depth()
    _local.depth = entered + 1
    start = time.perf_counter()
    try:
        yield
    finally:
        wall = time.perf_counter() - start
        _local.depth = entered
        record = TraceRecord(name=name, wall_seconds=wall, depth=entered,
                             timestamp=time.time(), attrs=attrs)
        if _collector is not None:
            _collector.record(record)
        if _sink is not None:
            _sink.write(record)


def summary(collector: Optional[TraceCollector] = None
            ) -> List[Tuple[str, int, float, float, float]]:
    """Per-name ``(name, count, total_seconds, mean_seconds,
    p999_seconds)`` rows.

    Sorted by total wall time, descending — the "where did the time go"
    decomposition of a traced run.  The P99.9 column folds each name's
    durations through a bounded log-bucketed histogram (relative error
    <= 1 %), so a stall that one mean would average away still shows.
    """
    collector = collector or _collector
    if collector is None:
        return []
    from repro.obs.latency import LatencyHistogram
    totals: Dict[str, Tuple[int, float, LatencyHistogram]] = {}
    for record in collector.records():
        count, total, histogram = totals.get(
            record.name, (0, 0.0, LatencyHistogram()))
        histogram.record(record.wall_seconds)
        totals[record.name] = (count + 1, total + record.wall_seconds,
                               histogram)
    rows = [(name, count, total, total / count if count else 0.0,
             histogram.percentile(99.9))
            for name, (count, total, histogram) in totals.items()]
    rows.sort(key=lambda row: row[2], reverse=True)
    return rows

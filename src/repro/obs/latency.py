"""Memory-bounded latency aggregation for open-loop load measurement.

Closed-loop runners keep one wall-clock sample per operation in a list
and sort it for percentiles — fine for a 200-operation scenario, fatal
for a load sweep that issues operations for minutes at a thousand per
second.  :class:`LatencyHistogram` is the bounded replacement: a
log-bucketed counter array at a fixed *relative* precision (the
HdrHistogram idea, hand-rolled so the repo stays dependency-free).
Recording is O(1), memory is O(log(max/min) / log(1 + precision))
regardless of sample count, and any percentile is reproducible to
within ``precision`` relative error.

:class:`LatencyCollector` is the coordinated-omission-correct view an
open-loop driver needs.  Every operation is recorded against the
*intended* arrival time its rate schedule assigned, not the moment the
driver got around to issuing it, and the collector keeps three
histograms:

* **response** — intended arrival → completion.  This is the number a
  user of a loaded system experiences; it includes every queueing delay
  a closed-loop harness silently hides.
* **service** — actual start → completion.  The engine-only cost, the
  number closed-loop harnesses report.
* **wait** — intended arrival → actual start.  The backlog delay
  itself; its mean is what the DES queueing model predicts.

A widening gap between response and service percentiles *is* the
coordinated-omission signal (pinned by the synthetic-stall test in
``tests/core/test_loadgen.py``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import ParameterError

__all__ = ["LatencyHistogram", "LatencyCollector", "DEFAULT_LATE_GRACE"]

#: Start lag (seconds) below which an operation is not counted late —
#: sleep-based pacing always wakes a hair past the intended instant.
DEFAULT_LATE_GRACE = 1e-3


class LatencyHistogram:
    """Log-bucketed value histogram with fixed relative precision.

    Values are assigned to geometric buckets whose bounds grow by
    ``(1 + precision)``; a percentile reports its bucket's upper bound,
    clamped into the exactly-tracked ``[min, max]`` observed range, so
    the relative error of any reported quantile is at most
    ``precision``.  Values below ``min_value`` share one underflow
    bucket, values above ``max_value`` one overflow bucket (their exact
    extremes still come back through the min/max clamp).

    Histograms with identical ``(min_value, max_value, precision)``
    merge exactly; :meth:`to_dict` / :meth:`from_dict` round-trip the
    full state through JSON (sparse — only occupied buckets).
    """

    __slots__ = ("min_value", "max_value", "precision", "count", "total",
                 "min", "max", "_counts", "_log_growth", "_bucket_limit")

    def __init__(self, min_value: float = 1e-6, max_value: float = 3600.0,
                 precision: float = 0.01) -> None:
        if min_value <= 0.0:
            raise ParameterError(
                f"min_value must be > 0, got {min_value}")
        if max_value <= min_value:
            raise ParameterError(
                f"max_value must exceed min_value, got "
                f"{max_value} <= {min_value}")
        if not 0.0 < precision < 1.0:
            raise ParameterError(
                f"precision must be in (0, 1), got {precision}")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.precision = float(precision)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self._counts: Dict[int, int] = {}
        self._log_growth = math.log1p(precision)
        # Index of the overflow bucket: one past the last regular bucket.
        self._bucket_limit = 1 + int(math.ceil(
            math.log(self.max_value / self.min_value) / self._log_growth))

    # -- recording ------------------------------------------------------- #

    def _index_of(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        index = 1 + int(math.log(value / self.min_value) / self._log_growth)
        return min(index, self._bucket_limit)

    def _value_of(self, index: int) -> float:
        """The representative (upper bound) of bucket *index*."""
        if index <= 0:
            return self.min_value
        if index >= self._bucket_limit:
            return self.max_value
        return self.min_value * math.exp(index * self._log_growth)

    def record(self, value: float) -> None:
        """Fold one sample (negative values clamp to zero)."""
        value = max(0.0, float(value))
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = self._index_of(value)
        self._counts[index] = self._counts.get(index, 0) + 1

    def record_many(self, values: Iterable[float]) -> None:
        """Fold an iterable of samples."""
        for value in values:
            self.record(value)

    # -- queries --------------------------------------------------------- #

    @property
    def mean(self) -> float:
        """Exact mean of every recorded sample (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def buckets_used(self) -> int:
        """Occupied buckets (the histogram's actual memory footprint)."""
        return len(self._counts)

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0..100); 0.0 when empty.

        Relative error is bounded by ``precision`` for in-range values;
        the result is clamped into the exact observed ``[min, max]``.
        """
        if not 0.0 <= q <= 100.0:
            raise ParameterError(f"q must be in [0, 100], got {q}")
        if not self.count:
            return 0.0
        target = max(1, int(math.ceil(q / 100.0 * self.count)))
        cumulative = 0
        value = self.max_value
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= target:
                value = self._value_of(index)
                break
        return min(max(value, self.min), self.max)

    def percentiles(self) -> "object":
        """P50/P95/P99/P99.9 as a :class:`LatencyPercentiles`."""
        from repro.core.metrics import LatencyPercentiles
        return LatencyPercentiles(count=self.count,
                                  p50=self.percentile(50.0),
                                  p95=self.percentile(95.0),
                                  p99=self.percentile(99.0),
                                  p999=self.percentile(99.9))

    def sample_inverse(self, u: float) -> float:
        """The value at CDF position ``u`` in [0, 1) — inverse-transform
        sampling hook for the DES service-time model."""
        if not 0.0 <= u < 1.0:
            raise ParameterError(f"u must be in [0, 1), got {u}")
        return self.percentile(u * 100.0)

    # -- composition ----------------------------------------------------- #

    def compatible(self, other: "LatencyHistogram") -> bool:
        """Whether *other* uses this histogram's bucket geometry."""
        return (self.min_value == other.min_value
                and self.max_value == other.max_value
                and self.precision == other.precision)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same geometry required) into this one."""
        if not self.compatible(other):
            raise ParameterError(
                "cannot merge histograms with different geometry: "
                f"({self.min_value}, {self.max_value}, {self.precision}) "
                f"vs ({other.min_value}, {other.max_value}, "
                f"{other.precision})")
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count

    # -- serialization ---------------------------------------------------- #

    def to_dict(self) -> dict:
        """JSON-ready full state (sparse bucket mapping)."""
        return {
            "min_value": self.min_value,
            "max_value": self.max_value,
            "precision": self.precision,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(index): count
                        for index, count in sorted(self._counts.items())},
        }

    @classmethod
    def from_dict(cls, spec: Mapping[str, object]) -> "LatencyHistogram":
        """Rebuild from :meth:`to_dict` output."""
        histogram = cls(min_value=float(spec["min_value"]),  # type: ignore
                        max_value=float(spec["max_value"]),  # type: ignore
                        precision=float(spec["precision"]))  # type: ignore
        histogram.count = int(spec.get("count", 0))  # type: ignore
        histogram.total = float(spec.get("total", 0.0))  # type: ignore
        minimum = spec.get("min")
        maximum = spec.get("max")
        histogram.min = float(minimum) if minimum is not None else math.inf
        histogram.max = float(maximum) if maximum is not None else 0.0
        buckets = spec.get("buckets") or {}
        histogram._counts = {int(index): int(count)
                             for index, count in buckets.items()}
        return histogram

    def summary_ms(self, prefix: str) -> Dict[str, float]:
        """Flat ``{prefix}_pNN_ms`` mapping for BENCH cells."""
        return {
            f"{prefix}_p50_ms": self.percentile(50.0) * 1e3,
            f"{prefix}_p95_ms": self.percentile(95.0) * 1e3,
            f"{prefix}_p99_ms": self.percentile(99.0) * 1e3,
            f"{prefix}_p999_ms": self.percentile(99.9) * 1e3,
            f"{prefix}_mean_ms": self.mean * 1e3,
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LatencyHistogram(count={self.count}, "
                f"mean={self.mean:.6f}, buckets={self.buckets_used})")


class LatencyCollector:
    """Coordinated-omission-correct per-operation timing aggregation.

    ``record(intended, started, completed)`` folds one operation into
    the three histograms (response / service / wait — see the module
    docs) and counts it late when its start lagged the intended arrival
    by more than ``late_grace`` seconds.  ``note_backlog`` tracks the
    deepest arrival backlog the pacing loop observed.  Collectors are
    plain picklable objects so parallel workers can ship them back.
    """

    def __init__(self, late_grace: float = DEFAULT_LATE_GRACE,
                 min_value: float = 1e-6, max_value: float = 3600.0,
                 precision: float = 0.01) -> None:
        if late_grace < 0.0:
            raise ParameterError(
                f"late_grace must be >= 0, got {late_grace}")
        self.late_grace = late_grace
        self.response = LatencyHistogram(min_value, max_value, precision)
        self.service = LatencyHistogram(min_value, max_value, precision)
        self.wait = LatencyHistogram(min_value, max_value, precision)
        self.operations = 0
        self.late_starts = 0
        self.max_backlog = 0

    def record(self, intended: float, started: float,
               completed: float) -> bool:
        """Fold one operation; returns whether it started late."""
        self.operations += 1
        self.response.record(completed - intended)
        self.service.record(completed - started)
        lag = started - intended
        self.wait.record(lag)
        late = lag > self.late_grace
        if late:
            self.late_starts += 1
        return late

    def note_backlog(self, depth: int) -> None:
        """Track the deepest due-but-unstarted arrival backlog seen."""
        if depth > self.max_backlog:
            self.max_backlog = depth

    def merge(self, other: "LatencyCollector") -> None:
        """Fold another collector (multi-worker merges)."""
        self.response.merge(other.response)
        self.service.merge(other.service)
        self.wait.merge(other.wait)
        self.operations += other.operations
        self.late_starts += other.late_starts
        self.max_backlog = max(self.max_backlog, other.max_backlog)

    def to_dict(self) -> dict:
        """JSON-ready summary + full histograms (round-trippable)."""
        return {
            "operations": self.operations,
            "late_starts": self.late_starts,
            "max_backlog": self.max_backlog,
            "late_grace": self.late_grace,
            "response": self.response.to_dict(),
            "service": self.service.to_dict(),
            "wait": self.wait.to_dict(),
        }

    @classmethod
    def from_dict(cls, spec: Mapping[str, object]) -> "LatencyCollector":
        """Rebuild from :meth:`to_dict` output."""
        collector = cls(late_grace=float(spec.get("late_grace",
                                                  DEFAULT_LATE_GRACE)))
        collector.response = LatencyHistogram.from_dict(
            spec["response"])  # type: ignore[arg-type]
        collector.service = LatencyHistogram.from_dict(
            spec["service"])  # type: ignore[arg-type]
        collector.wait = LatencyHistogram.from_dict(
            spec["wait"])  # type: ignore[arg-type]
        collector.operations = int(spec.get("operations", 0))  # type: ignore
        collector.late_starts = int(spec.get("late_starts", 0))  # type: ignore
        collector.max_backlog = int(spec.get("max_backlog", 0))  # type: ignore
        return collector

    def cell_fields(self) -> Dict[str, object]:
        """The flat latency fields of one ``load_sweep`` cell."""
        fields: Dict[str, object] = {
            "late_starts": self.late_starts,
            "max_backlog": self.max_backlog,
        }
        fields.update(self.response.summary_ms("response"))
        fields.update(self.service.summary_ms("service"))
        fields["wait_mean_ms"] = self.wait.mean * 1e3
        fields["wait_p95_ms"] = self.wait.percentile(95.0) * 1e3
        return fields

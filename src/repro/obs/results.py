"""The one ``BENCH_*.json`` result schema every emission path shares.

Benchmark results used to die with the terminal, and the three harnesses
that did emit JSON (``benchmarks/bench_parallel.py``,
``bench_scenarios.py``, ``ocb scale --json``) each invented their own
shape.  This module is the single writer they now share: a
schema-versioned document of the form ::

    {
      "schema_version": 1,
      "kind": "matrix" | "scale_sweep" | "parallel_scaling"
              | "scenario_contention",
      "name": "...",                    # spec / harness name
      "created": "2026-08-07T12:34:56Z",
      "system": { git_rev, platform, python, cpu_count, hostname, ... },
      "config": { ... },                # the spec that produced the run
      "cells": [ {flat metric mapping}, ... ]
    }

``docs/bench_schema.md`` describes every field; :func:`validate_document`
enforces the contract (hand-rolled — no jsonschema dependency) and is
what the CI ``bench-smoke`` leg runs against freshly emitted files.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ParameterError
from repro.obs.monitor import system_info

__all__ = [
    "SCHEMA_VERSION",
    "KINDS",
    "build_document",
    "validate_document",
    "default_filename",
    "write_document",
    "load_document",
]

SCHEMA_VERSION = 1

#: Document kinds the schema knows.  ``matrix`` is the ``ocb bench``
#: experiment matrix; ``shard_scaling`` is the sharded-vs-single-file
#: write-throughput curve of ``bench_parallel.py --backend
#: sharded-sqlite``; ``load_sweep`` is the ``ocb loadtest``
#: offered-rate sweep (one cell per rate, coordinated-omission-correct
#: latency split + DES-predicted waits); ``decode_fastpath`` is the
#: ``bench_decode.py`` A/B — decoded vs lazy vs structure-only cells
#: over the same mix, with the decode counters alongside the latency
#: tail; ``pipeline_fanout`` is the ``bench_pipeline.py`` A/B —
#: sequential vs concurrent shard fan-out vs pipelined BFS cells with
#: the overlap counters (``max_inflight_reads``, ``concurrent_batches``,
#: ``pool_wait_seconds``) alongside the wall clock; the other shapes
#: belong to the pre-existing harnesses.
KINDS = ("matrix", "scale_sweep", "parallel_scaling",
         "scenario_contention", "shard_scaling", "load_sweep",
         "decode_fastpath", "pipeline_fanout")

#: Keys every ``system`` mapping must carry.
_SYSTEM_KEYS = ("git_rev", "platform", "python", "cpu_count", "hostname")

#: Keys every cell of a ``matrix`` document must carry (the acceptance
#: surface of a persisted perf trajectory: identity, latency tail,
#: throughput, resources, contention).
MATRIX_CELL_KEYS = (
    "backend", "scenario", "clients", "mode",
    "operations", "throughput", "elapsed_seconds",
    "wall_p50_ms", "wall_p95_ms", "wall_p99_ms",
    "busy_retries", "cpu_seconds", "peak_rss_kb",
)

#: Keys every cell of a ``load_sweep`` document must carry: identity,
#: the offered-vs-achieved pair, the coordinated-omission-correct
#: latency split (response from *intended* arrival, service from actual
#: start), backlog accounting, the knee verdict, and the DES
#: predicted-vs-measured wait pair.  ``wall_p95_ms`` aliases the
#: service-time P95 so the ``--compare`` gate shared with ``ocb bench``
#: regresses on the engine number, not the queueing tail.
LOAD_CELL_KEYS = (
    "backend", "scenario", "clients",
    "offered_rate", "arrival_mode", "operations",
    "throughput", "elapsed_seconds", "wall_p95_ms",
    "response_p50_ms", "response_p95_ms", "response_p99_ms",
    "response_p999_ms",
    "service_p50_ms", "service_p95_ms", "service_p99_ms",
    "service_p999_ms",
    "wait_mean_ms", "late_starts", "max_backlog",
    "saturated", "knee",
)


def build_document(kind: str, cells: Sequence[Mapping[str, object]],
                   config: Optional[Mapping[str, object]] = None,
                   name: str = "ocb",
                   system: Optional[Mapping[str, object]] = None) -> dict:
    """Assemble (and validate) one result document."""
    document = {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "name": name,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "system": dict(system) if system is not None else system_info(),
        "config": dict(config or {}),
        "cells": [dict(cell) for cell in cells],
    }
    return validate_document(document)


def validate_document(document: object) -> dict:
    """Check *document* against the schema; raises on any violation.

    Returns the document so emission paths can validate inline.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        raise ParameterError(
            f"a BENCH document must be a JSON object, got "
            f"{type(document).__name__}")
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {SCHEMA_VERSION}, got {version!r}")
    kind = document.get("kind")
    if kind not in KINDS:
        problems.append(f"kind must be one of {KINDS}, got {kind!r}")
    if not isinstance(document.get("name"), str):
        problems.append("name must be a string")
    if not isinstance(document.get("created"), str):
        problems.append("created must be an ISO-8601 string")
    system = document.get("system")
    if not isinstance(system, dict):
        problems.append("system must be a mapping")
    else:
        for key in _SYSTEM_KEYS:
            if key not in system:
                problems.append(f"system is missing {key!r}")
    if not isinstance(document.get("config"), dict):
        problems.append("config must be a mapping")
    cells = document.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("cells must be a non-empty list")
    else:
        for index, cell in enumerate(cells):
            if not isinstance(cell, dict):
                problems.append(f"cells[{index}] must be a mapping")
                continue
            if kind == "matrix":
                missing = [key for key in MATRIX_CELL_KEYS
                           if key not in cell]
                if missing:
                    problems.append(
                        f"cells[{index}] is missing {missing}")
            elif kind == "load_sweep":
                missing = [key for key in LOAD_CELL_KEYS
                           if key not in cell]
                if missing:
                    problems.append(
                        f"cells[{index}] is missing {missing}")
    if problems:
        raise ParameterError(
            "invalid BENCH document: " + "; ".join(problems))
    return document  # type: ignore[return-value]


def default_filename(created: Optional[str] = None) -> str:
    """``BENCH_<date>.json`` for *created* (default: today, UTC)."""
    if created:
        date = created.split("T", 1)[0]
    else:
        date = time.strftime("%Y-%m-%d", time.gmtime())
    return f"BENCH_{date}.json"


def write_document(document: Mapping[str, object],
                   path: Optional[str] = None,
                   directory: str = ".") -> str:
    """Validate and persist *document*; returns the written path.

    ``path=None`` derives ``BENCH_<date>.json`` from the document's
    ``created`` stamp inside *directory*.
    """
    document = validate_document(dict(document))
    if path is None:
        path = os.path.join(
            directory, default_filename(str(document.get("created", ""))))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def load_document(path: str) -> dict:
    """Read and validate a persisted ``BENCH_*.json``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ParameterError(
            f"cannot read BENCH document {path!r}: {exc}") from exc
    except ValueError as exc:
        raise ParameterError(
            f"invalid JSON in BENCH document {path!r}: {exc}") from exc
    return validate_document(document)


def collector_dict(collector) -> Dict[str, object]:
    """A trace collector folded into a JSON-ready side channel."""
    from repro.obs import trace
    return {
        "records": collector.total,
        "dropped": collector.dropped,
        "by_name": [
            {"name": name, "count": count, "total_s": total,
             "mean_ms": mean * 1e3, "p999_ms": p999 * 1e3}
            for name, count, total, mean, p999
            in trace.summary(collector)],
    }

"""The experiment matrix behind ``ocb bench``: run, persist, compare.

A :class:`MatrixSpec` is a declarative experiment description —
backends × scenario presets × client counts, with one protocol size and
one database preset — exactly the "resource-monitored experiment matrix"
the roadmap asked for.  :func:`run_matrix` executes every cell under a
:class:`~repro.obs.monitor.ResourceMonitor` (plus per-worker monitors
when the cell runs as OS processes) and folds the results into one
schema-versioned document (:mod:`repro.obs.results`), which ``ocb
bench`` writes as ``BENCH_<date>.json`` — the repo's persisted perf
trajectory.

:func:`compare_documents` diffs a fresh document against a committed
baseline: structural mismatches (missing cells, changed operation
counts — deterministic under a fixed seed, so any drift is a wiring
regression) always fail; throughput and P95 latency fail only beyond a
tolerance band, so CI gates regressions rather than machine noise.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.backends.registry import backend_info
from repro.core.generation import generate_database
from repro.core.presets import PRESETS, SCENARIO_PRESETS, preset, \
    scenario_preset
from repro.core.scenario import ScenarioReport, ScenarioRunner
from repro.errors import BackendError, ParameterError
from repro.obs import results
from repro.obs.monitor import ResourceMonitor
from repro.parallel.spec import ParallelConfig

__all__ = [
    "MatrixCell",
    "MatrixSpec",
    "tiny_spec",
    "run_matrix",
    "ComparisonRow",
    "Comparison",
    "compare_documents",
]

#: Seed every matrix uses unless the spec overrides it — fixed so the
#: logical operation counts of a cell are identical across machines and
#: the structural half of the comparison is noise-free.
DEFAULT_SEED = 19980323  # EDBT '98.


@dataclass(frozen=True)
class MatrixCell:
    """One point of the matrix: an engine, a mix, a concurrency level."""

    backend: str
    scenario: str
    clients: int
    processes: bool = False
    #: Shard count for engines with the ``sharded`` capability; ``None``
    #: for single-store engines (and absent from their keys, so existing
    #: baselines keep matching).
    shards: Optional[int] = None

    @property
    def mode(self) -> str:
        """Requested execution mode (reports echo the achieved one)."""
        return "processes" if self.processes and self.clients > 1 \
            else "interleaved"

    @property
    def key(self) -> str:
        """The identity cells are matched on across documents."""
        if self.shards is None:
            return (f"{self.backend}/{self.scenario}"
                    f"/c{self.clients}/{self.mode}")
        return (f"{self.backend}/{self.scenario}/c{self.clients}"
                f"/s{self.shards}/{self.mode}")


@dataclass(frozen=True)
class MatrixSpec:
    """A declarative experiment matrix (JSON round-trippable)."""

    name: str = "tiny"
    backends: Tuple[str, ...] = ("simulated", "sqlite")
    scenarios: Tuple[str, ...] = ("read_heavy",)
    client_counts: Tuple[int, ...] = (1,)
    #: Run multi-client cells as real OS processes (shared storage).
    processes: bool = False
    db_preset: str = "default-small"
    cold_ops: int = 2
    warm_ops: int = 12
    seed: int = DEFAULT_SEED
    monitor_interval: float = 0.02
    #: Shard-count axis: engines with the ``sharded`` capability get one
    #: cell per count (key gains a ``/sN`` segment); single-store
    #: engines ignore the axis and keep their one cell.  Empty = off.
    shard_counts: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "backends", tuple(self.backends))
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "client_counts",
                           tuple(int(c) for c in self.client_counts))
        object.__setattr__(self, "shard_counts",
                           tuple(int(s) for s in self.shard_counts))
        if not self.backends or not self.scenarios or not self.client_counts:
            raise ParameterError(
                "a MatrixSpec needs >= 1 backend, scenario and client count")
        for scenario in self.scenarios:
            if scenario not in SCENARIO_PRESETS:
                raise ParameterError(
                    f"unknown scenario preset {scenario!r}; choose from "
                    f"{sorted(SCENARIO_PRESETS)}")
        if self.db_preset not in PRESETS:
            raise ParameterError(
                f"unknown database preset {self.db_preset!r}; choose from "
                f"{sorted(PRESETS)}")
        if any(clients < 1 for clients in self.client_counts):
            raise ParameterError("client counts must be >= 1")
        if any(shards < 1 for shards in self.shard_counts):
            raise ParameterError("shard counts must be >= 1")
        if self.cold_ops < 0 or self.warm_ops < 1:
            raise ParameterError("need cold_ops >= 0 and warm_ops >= 1")

    @staticmethod
    def _shardable(backend: str) -> bool:
        try:
            return backend_info(backend).has_capability("sharded")
        except BackendError:
            return False  # Unknown names fail later, at run time.

    def cells(self) -> List[MatrixCell]:
        """Every cell, in backend/scenario/clients/shards order."""
        cells = []
        for backend in self.backends:
            shard_axis: Tuple[Optional[int], ...] = (None,)
            if self.shard_counts and self._shardable(backend):
                shard_axis = self.shard_counts
            cells.extend(
                MatrixCell(backend=backend, scenario=scenario,
                           clients=clients, processes=self.processes,
                           shards=shards)
                for scenario in self.scenarios
                for clients in self.client_counts
                for shards in shard_axis)
        return cells

    def to_dict(self) -> dict:
        """JSON-ready mapping (stored as the document's ``config``)."""
        return {
            "name": self.name,
            "backends": list(self.backends),
            "scenarios": list(self.scenarios),
            "client_counts": list(self.client_counts),
            "processes": self.processes,
            "db_preset": self.db_preset,
            "cold_ops": self.cold_ops,
            "warm_ops": self.warm_ops,
            "seed": self.seed,
            "monitor_interval": self.monitor_interval,
            "shard_counts": list(self.shard_counts),
        }

    @classmethod
    def from_dict(cls, spec: Mapping[str, object]) -> "MatrixSpec":
        """Build from a JSON mapping; unknown keys are rejected."""
        allowed = set(cls.__dataclass_fields__)
        unknown = set(spec) - allowed
        if unknown:
            raise ParameterError(
                f"unknown MatrixSpec keys {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}")
        return cls(**spec)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "MatrixSpec":
        """Parse a JSON spec document."""
        try:
            spec = json.loads(text)
        except ValueError as exc:
            raise ParameterError(f"invalid matrix spec JSON: {exc}") from exc
        if not isinstance(spec, dict):
            raise ParameterError("a matrix spec must be a JSON object")
        return cls.from_dict(spec)


def tiny_spec() -> MatrixSpec:
    """The built-in 2-cell matrix ``ocb bench`` runs without ``--spec``.

    Small enough for a CI smoke leg, wide enough to exercise both a
    cost-model engine and a real one — and the spec the committed
    ``BENCH_baseline.json`` was produced from.
    """
    return MatrixSpec()


# ---------------------------------------------------------------------- #
# Execution
# ---------------------------------------------------------------------- #

def _cell_dict(cell: MatrixCell, report: ScenarioReport,
               usage, worker_usage: List[dict]) -> Dict[str, object]:
    """Fold one executed cell into the flat schema mapping."""
    warm = report.merged_warm.wall_percentiles()
    peak_rss = usage.peak_rss_kb
    cpu = usage.cpu_seconds
    if worker_usage:
        peak_rss = max([peak_rss] + [int(w.get("peak_rss_kb", 0))
                                     for w in worker_usage])
    document: Dict[str, object] = {
        "key": cell.key,
        "backend": cell.backend,
        "scenario": cell.scenario,
        "clients": cell.clients,
        "shards": cell.shards,
        "mode": report.mode,
        "executed_parallel": report.executed_parallel,
        "operations": report.total_operations,
        "write_operations": report.write_operations,
        "elapsed_seconds": report.elapsed_seconds,
        "throughput": report.throughput,
        "wall_p50_ms": warm.p50 * 1e3,
        "wall_p95_ms": warm.p95 * 1e3,
        "wall_p99_ms": warm.p99 * 1e3,
        "busy_retries": report.busy_retries,
        "busy_wait_seconds": report.busy_wait_seconds,
        "remote_reads": report.remote_reads,
        "read_misses": report.read_misses,
        "write_conflicts": report.write_conflicts,
        "sql_round_trips": report.sql_round_trips,
        "cpu_seconds": cpu,
        "cpu_utilization": usage.cpu_utilization,
        "peak_rss_kb": peak_rss,
        "mean_rss_kb": usage.mean_rss_kb,
        "monitor_samples": usage.samples,
    }
    if worker_usage:
        document["workers"] = worker_usage
    return document


def run_matrix(spec: MatrixSpec,
               progress=None) -> dict:
    """Execute every cell of *spec*; returns the validated document.

    ``progress`` is an optional ``callable(str)`` fed one line per cell
    (the CLI points it at stderr so long matrices are not silent).
    """
    db_params, _ = preset(spec.db_preset)
    db_params = replace(db_params, seed=spec.seed)
    pristine, _report = generate_database(db_params)
    cells: List[Dict[str, object]] = []
    for cell in spec.cells():
        # Mutating scenarios write into their database view — every cell
        # gets a pristine deep copy so cells cannot contaminate each other.
        database = copy.deepcopy(pristine)
        scenario = scenario_preset(cell.scenario)
        backend_options = dict(scenario.backend_options)
        if cell.shards is not None:
            backend_options["shards"] = cell.shards
        scenario = replace(scenario, backend=cell.backend,
                           clients=cell.clients, cold_ops=spec.cold_ops,
                           warm_ops=spec.warm_ops, seed=spec.seed,
                           backend_options=backend_options)
        runner = ScenarioRunner(database, scenario)
        monitor = ResourceMonitor(interval=spec.monitor_interval)
        monitor.start()
        try:
            if cell.processes and cell.clients > 1:
                config = ParallelConfig(monitor=True,
                                        monitor_interval=spec.monitor_interval,
                                        shards=cell.shards)
                report = runner.run_processes(config=config)
            else:
                report = runner.run()
        finally:
            usage = monitor.stop()
        cells.append(_cell_dict(cell, report, usage,
                                list(report.worker_resources)))
        if progress is not None:
            progress(f"bench: {cell.key}: "
                     f"{report.total_operations} ops, "
                     f"{report.throughput:.1f} op/s, "
                     f"peak RSS {cells[-1]['peak_rss_kb']} kB")
    return results.build_document(kind="matrix", cells=cells,
                                  config=spec.to_dict(), name=spec.name)


# ---------------------------------------------------------------------- #
# Baseline comparison
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class ComparisonRow:
    """One cell's baseline-vs-current verdict."""

    key: str
    status: str  # "ok" | "regressed" | "missing" | "new"
    problems: Tuple[str, ...] = ()
    baseline: Optional[Dict[str, object]] = None
    current: Optional[Dict[str, object]] = None

    @property
    def throughput_ratio(self) -> Optional[float]:
        """current/baseline throughput (None when either side absent)."""
        if not self.baseline or not self.current:
            return None
        base = float(self.baseline.get("throughput", 0.0) or 0.0)
        if base <= 0.0:
            return None
        return float(self.current.get("throughput", 0.0) or 0.0) / base


@dataclass
class Comparison:
    """The full diff of two matrix documents."""

    tolerance: float
    rows: List[ComparisonRow] = field(default_factory=list)

    @property
    def regressions(self) -> List[ComparisonRow]:
        """Rows that gate (missing cells or beyond-tolerance drops)."""
        return [row for row in self.rows
                if row.status in ("regressed", "missing")]

    @property
    def ok(self) -> bool:
        """Whether the current document passes the gate."""
        return not self.regressions

    def describe(self) -> str:
        """One line: cells compared, regressions, tolerance band."""
        return (f"{len(self.rows)} cells compared at tolerance "
                f"{self.tolerance:.2f}: "
                f"{len(self.regressions)} regression(s)")


def _index_cells(document: Mapping[str, object]) -> Dict[str, dict]:
    cells = {}
    for cell in document.get("cells", []):  # type: ignore[union-attr]
        key = cell.get("key") or (
            f"{cell.get('backend')}/{cell.get('scenario')}"
            f"/c{cell.get('clients')}/{cell.get('mode')}")
        cells[str(key)] = cell
    return cells


def compare_documents(current: Mapping[str, object],
                      baseline: Mapping[str, object],
                      tolerance: float = 0.5) -> Comparison:
    """Diff *current* against *baseline* with a tolerance band.

    * a baseline cell missing from current → always a regression
      (wiring: the matrix silently lost coverage);
    * a logical-count mismatch (``operations`` / ``write_operations``,
      deterministic under the pinned seed) → always a regression;
    * ``throughput`` lower than ``baseline / (1 + tolerance)`` or
      ``wall_p95_ms`` higher than ``baseline * (1 + tolerance)`` →
      a perf regression;
    * cells only in current are reported as ``new`` but never gate.
    """
    if tolerance < 0.0:
        raise ParameterError(f"tolerance must be >= 0, got {tolerance}")
    results.validate_document(dict(current))
    results.validate_document(dict(baseline))
    current_cells = _index_cells(current)
    baseline_cells = _index_cells(baseline)
    comparison = Comparison(tolerance=tolerance)
    for key, base in baseline_cells.items():
        cur = current_cells.get(key)
        if cur is None:
            comparison.rows.append(ComparisonRow(
                key=key, status="missing", baseline=base,
                problems=("cell missing from the current run",)))
            continue
        problems: List[str] = []
        for count_key in ("operations", "write_operations"):
            if count_key in base and base[count_key] != cur.get(count_key):
                problems.append(
                    f"{count_key} changed: {base[count_key]} -> "
                    f"{cur.get(count_key)}")
        base_tp = float(base.get("throughput", 0.0) or 0.0)
        cur_tp = float(cur.get("throughput", 0.0) or 0.0)
        if base_tp > 0.0 and cur_tp < base_tp / (1.0 + tolerance):
            problems.append(
                f"throughput fell beyond tolerance: "
                f"{base_tp:.1f} -> {cur_tp:.1f} op/s")
        base_p95 = float(base.get("wall_p95_ms", 0.0) or 0.0)
        cur_p95 = float(cur.get("wall_p95_ms", 0.0) or 0.0)
        if base_p95 > 0.0 and cur_p95 > base_p95 * (1.0 + tolerance):
            problems.append(
                f"P95 rose beyond tolerance: "
                f"{base_p95:.3f} -> {cur_p95:.3f} ms")
        comparison.rows.append(ComparisonRow(
            key=key, status="regressed" if problems else "ok",
            problems=tuple(problems), baseline=base, current=cur))
    for key, cur in current_cells.items():
        if key not in baseline_cells:
            comparison.rows.append(ComparisonRow(
                key=key, status="new", current=cur))
    return comparison

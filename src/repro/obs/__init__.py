"""Observability: tracing, resource monitoring, persisted benchmarks.

Three pieces, deliberately dependency-light so the hot paths can import
them without cycles:

* :mod:`repro.obs.trace` — a span/event tracer with a ring-buffered
  in-process collector and an optional JSONL sink.  Emission is guarded
  by a module flag (``trace.enabled``) so a traced-off run executes no
  tracer code at all on the paths PR 2/4 optimized.
* :mod:`repro.obs.profiler` — :mod:`cProfile` behind the same
  off-by-default module switch: ``--profile FILE`` wraps a whole CLI
  command and answers *which functions* burned the time (the tracer
  answers *which spans*).
* :mod:`repro.obs.monitor` — a background resource sampler (CPU time
  via :func:`os.times`, RSS via ``/proc/self/status`` with a
  ``getrusage`` fallback — no psutil dependency) plus
  :func:`~repro.obs.monitor.system_info` (git rev, platform, CPU count).
* :mod:`repro.obs.results` — the one schema-versioned ``BENCH_*.json``
  writer every benchmark emission path shares.
* :mod:`repro.obs.latency` — the memory-bounded log-bucketed
  :class:`~repro.obs.latency.LatencyHistogram` and the
  coordinated-omission-correct
  :class:`~repro.obs.latency.LatencyCollector` (response vs service
  time against *intended* arrivals) the open-loop driver records into.

:mod:`repro.obs.matrix` (the declarative experiment matrix behind
``ocb bench``) imports the execution layers and therefore must be
imported explicitly — it is *not* pulled in here, so backends and the
kernel can import ``repro.obs`` without a cycle.
"""

from repro.obs import profiler, trace
from repro.obs.latency import LatencyCollector, LatencyHistogram
from repro.obs.monitor import ResourceMonitor, ResourceUsage, system_info
from repro.obs.results import (
    SCHEMA_VERSION,
    build_document,
    default_filename,
    load_document,
    validate_document,
    write_document,
)

__all__ = [
    "profiler",
    "trace",
    "LatencyCollector",
    "LatencyHistogram",
    "ResourceMonitor",
    "ResourceUsage",
    "system_info",
    "SCHEMA_VERSION",
    "build_document",
    "default_filename",
    "load_document",
    "validate_document",
    "write_document",
]

"""Summary statistics for benchmark runs.

Benchmark papers report means; credible benchmark *tools* report
dispersion too.  This module provides the small, dependency-free summary
kit the reporting layer and downstream users need: mean, standard
deviation, percentiles, and Student-t confidence intervals (the standard
discipline for the 10-run protocols of OO1/HyperModel).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import ParameterError

__all__ = ["Summary", "summarize", "percentile", "confidence_interval",
           "BoundedSample"]

# Two-sided 95 % Student-t critical values for df = 1..30; beyond 30 the
# normal approximation (1.96) is used.
_T_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def _t_critical(df: int) -> float:
    if df < 1:
        raise ParameterError(f"degrees of freedom must be >= 1, got {df}")
    return _T_95[df - 1] if df <= len(_T_95) else 1.96


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ParameterError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ParameterError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    result = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
    # Interpolation must stay inside its bracket: for subnormal
    # endpoints the products can round to zero, which would put e.g. a
    # median *below* the minimum.
    return min(max(result, ordered[low]), ordered[high])


def confidence_interval(values: Sequence[float]) -> float:
    """Half-width of the two-sided 95 % CI around the mean.

    Returns 0.0 for fewer than two samples (no dispersion estimate).
    """
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return _t_critical(n - 1) * math.sqrt(variance / n)


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one metric across runs."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    median: float
    p95: float
    ci95: float

    def describe(self, unit: str = "") -> str:
        """One line: mean ± CI (min..max)."""
        suffix = f" {unit}" if unit else ""
        return (f"{self.mean:.3f} ± {self.ci95:.3f}{suffix} "
                f"(min {self.minimum:.3f}, median {self.median:.3f}, "
                f"p95 {self.p95:.3f}, max {self.maximum:.3f}, n={self.count})")


def summarize(values: Sequence[float]) -> Summary:
    """Compute the full :class:`Summary` of a non-empty sample."""
    if not values:
        raise ParameterError("cannot summarize an empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        stdev = math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))
    else:
        stdev = 0.0
    return Summary(count=n,
                   mean=mean,
                   stdev=stdev,
                   minimum=float(min(values)),
                   maximum=float(max(values)),
                   median=percentile(values, 50.0),
                   p95=percentile(values, 95.0),
                   ci95=confidence_interval(values))


class BoundedSample:
    """A latency sample set whose memory footprint is bounded.

    Below ``threshold`` samples this behaves exactly like the list it
    replaces: every value is kept and :meth:`percentile` runs the exact
    sorted-interpolation path above, so short scenario runs keep their
    byte-identical reports.  Past the threshold the values *fold* into a
    log-bucketed :class:`repro.obs.latency.LatencyHistogram` (fixed
    relative precision, O(1) memory from then on) — the regime a
    multi-minute ``ocb loadtest`` sweep lives in, where an unbounded
    ``wall_samples`` list would grow by one float per operation
    forever.

    The container is picklable (parallel workers ship their stats home)
    and mergeable in either regime.
    """

    DEFAULT_THRESHOLD = 4096

    def __init__(self, values: Optional[Iterable[float]] = None,
                 threshold: int = DEFAULT_THRESHOLD,
                 precision: float = 0.005) -> None:
        if threshold < 1:
            raise ParameterError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.precision = precision
        self._values: List[float] = []
        self._histogram = None  # type: Optional[object]
        if values is not None:
            self.extend(values)

    # -- regime ---------------------------------------------------------- #

    @property
    def exact(self) -> bool:
        """Whether every sample is still held individually."""
        return self._histogram is None

    def _fold(self) -> None:
        # Imported lazily: obs.latency has no dependencies back into
        # stats, but keeping the import out of module scope keeps this
        # module importable first during package initialisation.
        from repro.obs.latency import LatencyHistogram
        histogram = LatencyHistogram(precision=self.precision)
        histogram.record_many(self._values)
        self._histogram = histogram
        self._values = []

    # -- list protocol ---------------------------------------------------- #

    def append(self, value: float) -> None:
        """Add one sample, folding to the histogram at the threshold."""
        if self._histogram is not None:
            self._histogram.record(value)
            return
        self._values.append(float(value))
        if len(self._values) > self.threshold:
            self._fold()

    def extend(self, values: Iterable[float]) -> None:
        """Add many samples; *values* may be another BoundedSample."""
        if isinstance(values, BoundedSample):
            if values._histogram is not None:
                if self._histogram is None:
                    self._fold()
                self._histogram.merge(values._histogram)
                return
            values = values._values
        for value in values:
            self.append(value)

    def __len__(self) -> int:
        if self._histogram is not None:
            return self._histogram.count
        return len(self._values)

    def __iter__(self) -> Iterator[float]:
        """Iterate raw samples (exact regime only)."""
        if self._histogram is not None:
            raise ParameterError(
                "BoundedSample folded to a histogram; raw samples are "
                "no longer available")
        return iter(self._values)

    def __getitem__(self, index):
        if self._histogram is not None:
            raise ParameterError(
                "BoundedSample folded to a histogram; raw samples are "
                "no longer available")
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BoundedSample):
            if self.exact and other.exact:
                return self._values == other._values
            return (len(self) == len(other)
                    and self.percentile(50.0) == other.percentile(50.0))
        if isinstance(other, (list, tuple)) and self.exact:
            return self._values == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regime = "exact" if self.exact else "histogram"
        return f"BoundedSample(n={len(self)}, {regime})"

    # -- queries ---------------------------------------------------------- #

    def percentile(self, q: float) -> float:
        """Exact percentile below the fold threshold, histogram above
        (relative error bounded by ``precision``); 0.0 when empty."""
        if self._histogram is not None:
            return self._histogram.percentile(q)
        if not self._values:
            return 0.0
        return percentile(self._values, q)

    @property
    def mean(self) -> float:
        """Exact mean in both regimes (the histogram tracks the sum)."""
        if self._histogram is not None:
            return self._histogram.mean
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

"""Summary statistics for benchmark runs.

Benchmark papers report means; credible benchmark *tools* report
dispersion too.  This module provides the small, dependency-free summary
kit the reporting layer and downstream users need: mean, standard
deviation, percentiles, and Student-t confidence intervals (the standard
discipline for the 10-run protocols of OO1/HyperModel).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ParameterError

__all__ = ["Summary", "summarize", "percentile", "confidence_interval"]

# Two-sided 95 % Student-t critical values for df = 1..30; beyond 30 the
# normal approximation (1.96) is used.
_T_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def _t_critical(df: int) -> float:
    if df < 1:
        raise ParameterError(f"degrees of freedom must be >= 1, got {df}")
    return _T_95[df - 1] if df <= len(_T_95) else 1.96


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ParameterError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ParameterError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    result = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
    # Interpolation must stay inside its bracket: for subnormal
    # endpoints the products can round to zero, which would put e.g. a
    # median *below* the minimum.
    return min(max(result, ordered[low]), ordered[high])


def confidence_interval(values: Sequence[float]) -> float:
    """Half-width of the two-sided 95 % CI around the mean.

    Returns 0.0 for fewer than two samples (no dispersion estimate).
    """
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return _t_critical(n - 1) * math.sqrt(variance / n)


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one metric across runs."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    median: float
    p95: float
    ci95: float

    def describe(self, unit: str = "") -> str:
        """One line: mean ± CI (min..max)."""
        suffix = f" {unit}" if unit else ""
        return (f"{self.mean:.3f} ± {self.ci95:.3f}{suffix} "
                f"(min {self.minimum:.3f}, median {self.median:.3f}, "
                f"p95 {self.p95:.3f}, max {self.maximum:.3f}, n={self.count})")


def summarize(values: Sequence[float]) -> Summary:
    """Compute the full :class:`Summary` of a non-empty sample."""
    if not values:
        raise ParameterError("cannot summarize an empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        stdev = math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))
    else:
        stdev = 0.0
    return Summary(count=n,
                   mean=mean,
                   stdev=stdev,
                   minimum=float(min(values)),
                   maximum=float(max(values)),
                   median=percentile(values, 50.0),
                   p95=percentile(values, 95.0),
                   ci95=confidence_interval(values))

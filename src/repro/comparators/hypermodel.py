"""The HyperModel (Tektronix) benchmark — Section 2.2 of the OCB paper.

An extended hypertext model: ``Node`` objects arranged in

* a **parent/children aggregation** hierarchy (fan-out 5, ``levels``
  levels — the classic instance has 5 levels and (5^5 - 1)/4 = 781 or
  3906 nodes at 6 levels),
* a **partOf/parts** second hierarchy partitioning the same nodes, and
* **refTo/refFrom** one-to-one association links between random nodes.

Each node carries the attribute set the benchmark's range queries use
(``uniqueId``, ``hundred``, ``thousand``, ``million``); attribute *values*
live in an in-memory attribute table (a catalog/index), while the store
holds the node payload — range predicates are evaluated on the index and
every qualifying node is then **read through the store**, so the I/O
behaviour matches an indexed OODB scan.

The seven operation families are implemented with the benchmark's
setup / cold (50 inputs) / warm (same inputs) protocol:

nameLookup, rangeLookup, groupLookup, refLookup (reverse), seqScan,
closureTraversal, and editing (an update, committed after the batch).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.errors import ParameterError, WorkloadError
from repro.rand.lewis_payne import DEFAULT_SEED, LewisPayne
from repro.store.serializer import StoredObject
from repro.store.storage import ObjectStore, StoreConfig

__all__ = [
    "HyperModelParameters",
    "NodeAttributes",
    "HyperModelDatabase",
    "OperationReport",
    "HyperModelBenchmark",
    "HYPERMODEL_OPERATIONS",
]

NODE_CLASS = 1

#: Reference slot layout of a Node record.
PARENT_SLOTS = 5        # children (aggregation), slots 0-4
PART_SLOT = 5           # partOf parent, slot 5
REF_TO_SLOT = 6         # refTo association, slot 6
_NODE_PAYLOAD = 40      # uniqueId/hundred/thousand/million + text.

_STREAM_BUILD = 0x0112_0001
_STREAM_WORKLOAD = 0x0112_0002


@dataclass(frozen=True)
class HyperModelParameters:
    """Size and protocol knobs."""

    levels: int = 5          # Aggregation hierarchy depth (fan-out 5).
    fan_out: int = 5
    inputs: int = 50         # The benchmark's 50 precomputed inputs.
    range_width: int = 10    # Width of the rangeLookup predicate (hundred).
    closure_depth: int = 3   # Depth of closureTraversal.
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ParameterError(f"levels must be >= 1, got {self.levels}")
        if self.fan_out < 1:
            raise ParameterError(f"fan_out must be >= 1, got {self.fan_out}")
        if self.inputs < 1:
            raise ParameterError(f"inputs must be >= 1, got {self.inputs}")
        if not 1 <= self.range_width <= 100:
            raise ParameterError("range_width must be in [1, 100], got "
                                 f"{self.range_width}")

    @property
    def num_nodes(self) -> int:
        """Nodes in a complete fan-out^levels hierarchy."""
        total = 0
        width = 1
        for _ in range(self.levels):
            total += width
            width *= self.fan_out
        return total


@dataclass(frozen=True)
class NodeAttributes:
    """The HyperModel attribute set used by predicates."""

    unique_id: int
    hundred: int
    thousand: int
    million: int


class HyperModelDatabase:
    """Node hierarchy + partOf partition + refTo links."""

    def __init__(self, parameters: Optional[HyperModelParameters] = None) -> None:
        self.parameters = parameters or HyperModelParameters()
        self.records: Dict[int, StoredObject] = {}
        self.attributes: Dict[int, NodeAttributes] = {}
        self.node_oids: List[int] = []
        self.root_oid: Optional[int] = None
        self._built = False

    def build(self) -> Dict[int, StoredObject]:
        """Create the hierarchy, the partOf partition and refTo links."""
        if self._built:
            return self.records
        p = self.parameters
        rng = LewisPayne(p.seed).spawn(_STREAM_BUILD)

        n = p.num_nodes
        self.node_oids = list(range(1, n + 1))
        self.root_oid = 1

        refs: Dict[int, List[Optional[int]]] = {
            oid: [None] * (PARENT_SLOTS + 2) for oid in self.node_oids}
        back: Dict[int, List[Tuple[int, int]]] = {
            oid: [] for oid in self.node_oids}

        # Aggregation hierarchy: node k's children are 5k-3 .. 5k+1 in a
        # complete quinary tree laid out level by level (1-based oids).
        for oid in self.node_oids:
            for slot in range(p.fan_out):
                child = (oid - 1) * p.fan_out + 2 + slot
                if child <= n and slot < PARENT_SLOTS:
                    refs[oid][slot] = child
                    back[child].append((oid, slot))

        # partOf: a second partition — each non-root node points at a
        # random node of the previous "stripe" (locality across the id
        # space), forming a forest over the same population.
        for oid in self.node_oids[1:]:
            anchor = rng.randint(max(1, oid - 25), max(1, oid - 1))
            refs[oid][PART_SLOT] = anchor
            back[anchor].append((oid, PART_SLOT))

        # refTo: one association to a uniformly random distinct node.
        for oid in self.node_oids:
            target = oid
            while target == oid:
                target = rng.randint(1, n)
            refs[oid][REF_TO_SLOT] = target
            back[target].append((oid, REF_TO_SLOT))

        # Attributes (uniqueId permutation + modular attributes).
        permutation = list(self.node_oids)
        rng.shuffle(permutation)
        for oid, unique in zip(self.node_oids, permutation):
            self.attributes[oid] = NodeAttributes(
                unique_id=unique,
                hundred=unique % 100,
                thousand=unique % 1000,
                million=unique % 1_000_000)

        for oid in self.node_oids:
            self.records[oid] = StoredObject(
                oid=oid, cid=NODE_CLASS,
                refs=tuple(refs[oid]),
                back_refs=tuple(back[oid]),
                filler=_NODE_PAYLOAD)
        self._built = True
        return self.records

    def nodes_with_hundred_in(self, low: int, high: int) -> List[int]:
        """Index lookup for the rangeLookup predicate."""
        return [oid for oid, attrs in self.attributes.items()
                if low <= attrs.hundred <= high]

    def sizes(self) -> Dict[int, int]:
        """oid -> serialized size."""
        return {oid: record.size for oid, record in self.records.items()}


@dataclass
class OperationReport:
    """Cold/warm metrics of one HyperModel operation."""

    operation: str
    cold_seconds: float
    warm_seconds: float
    cold_reads: int
    warm_reads: int
    cold_sim_seconds: float
    warm_sim_seconds: float
    inputs: int

    @property
    def warm_speedup(self) -> float:
        """cold / warm wall time — the benchmark's caching-effect metric."""
        if self.warm_seconds <= 0:
            return float("inf") if self.cold_seconds > 0 else 1.0
        return self.cold_seconds / self.warm_seconds


class HyperModelBenchmark:
    """The 7 operation families with the setup/cold/warm protocol."""

    def __init__(self, database: HyperModelDatabase, store: ObjectStore,
                 policy: Optional[ClusteringPolicy] = None) -> None:
        if store.object_count == 0:
            raise WorkloadError("bulk-load the HyperModel database first")
        self.database = database
        self.store = store
        self.policy = policy or NoClustering()
        self._rng = LewisPayne(
            database.parameters.seed).spawn(_STREAM_WORKLOAD)

    # ------------------------------------------------------------------ #
    # Protocol driver
    # ------------------------------------------------------------------ #

    def run_operation(self, name: str) -> OperationReport:
        """Setup (untimed), cold run over 50 inputs, warm run repeats them."""
        try:
            prepare, body, is_update = HYPERMODEL_OPERATIONS[name]
        except KeyError:
            raise WorkloadError(
                f"unknown HyperModel operation {name!r}; choose from "
                f"{sorted(HYPERMODEL_OPERATIONS)}") from None
        inputs = prepare(self)

        cold = self._timed_pass(body, inputs, is_update)
        warm = self._timed_pass(body, inputs, is_update)
        return OperationReport(
            operation=name,
            cold_seconds=cold[0], warm_seconds=warm[0],
            cold_reads=cold[1], warm_reads=warm[1],
            cold_sim_seconds=cold[2], warm_sim_seconds=warm[2],
            inputs=len(inputs))

    def run_all(self) -> Dict[str, OperationReport]:
        """Every operation family once."""
        return {name: self.run_operation(name)
                for name in sorted(HYPERMODEL_OPERATIONS)}

    def _timed_pass(self, body: Callable, inputs: Sequence[int],
                    is_update: bool) -> Tuple[float, int, float]:
        before = self.store.snapshot()
        start = time.perf_counter()
        for value in inputs:
            body(self, value)
        if is_update:
            self.store.flush()  # One commit for all 50 operations.
        wall = time.perf_counter() - start
        delta = self.store.snapshot() - before
        self.policy.on_transaction_end()
        return (wall, delta.io_reads, delta.sim_time)

    # ------------------------------------------------------------------ #
    # Input preparation (the untimed "setup" step)
    # ------------------------------------------------------------------ #

    def _random_nodes(self) -> List[int]:
        n = self.database.parameters.inputs
        return [self._rng.randint(1, len(self.database.node_oids))
                for _ in range(n)]

    def _random_hundreds(self) -> List[int]:
        n = self.database.parameters.inputs
        width = self.database.parameters.range_width
        return [self._rng.randint(0, 100 - width) for _ in range(n)]

    # ------------------------------------------------------------------ #
    # Operation bodies
    # ------------------------------------------------------------------ #

    def _access(self, oid: int, source: Optional[int] = None) -> StoredObject:
        record = self.store.read_object(oid)
        self.policy.observe_access(source, oid, None)
        return record

    def _name_lookup(self, oid: int) -> None:
        self._access(oid)

    def _range_lookup(self, low: int) -> None:
        width = self.database.parameters.range_width
        for oid in self.database.nodes_with_hundred_in(low, low + width - 1):
            self._access(oid)

    def _group_lookup(self, oid: int) -> None:
        record = self._access(oid)
        for target in record.refs:
            if target is not None:
                self._access(target, source=oid)

    def _ref_lookup(self, oid: int) -> None:
        record = self._access(oid)
        for source, _slot in record.back_refs:
            self._access(source, source=oid)

    def _sequential_scan(self, _input: int) -> None:
        for oid in self.database.node_oids:
            self._access(oid)

    def _closure_traversal(self, oid: int) -> None:
        depth = self.database.parameters.closure_depth

        def visit(record: StoredObject, level: int) -> None:
            if level >= depth:
                return
            for slot in range(PARENT_SLOTS):
                target = record.refs[slot]
                if target is not None:
                    visit(self._access(target, source=record.oid), level + 1)

        visit(self._access(oid), 0)

    def _editing(self, oid: int) -> None:
        record = self._access(oid)
        self.store.write_object(record)  # Same-size payload update.


#: name -> (prepare_inputs, body, is_update)
HYPERMODEL_OPERATIONS: Dict[str, Tuple[Callable, Callable, bool]] = {
    "nameLookup": (HyperModelBenchmark._random_nodes,
                   HyperModelBenchmark._name_lookup, False),
    "rangeLookup": (HyperModelBenchmark._random_hundreds,
                    HyperModelBenchmark._range_lookup, False),
    "groupLookup": (HyperModelBenchmark._random_nodes,
                    HyperModelBenchmark._group_lookup, False),
    "refLookup": (HyperModelBenchmark._random_nodes,
                  HyperModelBenchmark._ref_lookup, False),
    "seqScan": (lambda self: [0],
                HyperModelBenchmark._sequential_scan, False),
    "closureTraversal": (HyperModelBenchmark._random_nodes,
                         HyperModelBenchmark._closure_traversal, False),
    "editing": (HyperModelBenchmark._random_nodes,
                HyperModelBenchmark._editing, True),
}


def build_hypermodel_store(parameters: Optional[HyperModelParameters] = None,
                           store_config: Optional[StoreConfig] = None
                           ) -> Tuple[HyperModelDatabase, ObjectStore]:
    """Convenience: build and bulk-load a HyperModel database."""
    database = HyperModelDatabase(parameters)
    records = database.build()
    store = (store_config or StoreConfig()).build()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    return database, store

"""OO1 — the Cattell "Objects Operations 1" engineering benchmark.

Full implementation of the benchmark described in Section 2.1 of the OCB
paper, running against the same Texas-like object store:

* **Database** — ``Part`` objects (class 1) each connected, through three
  ``Connection`` objects (class 2), to three other parts.  Connections
  carry ``From`` and ``To`` references.  Locality of reference: with
  probability 0.9 the target part id lies within ``[id - RefZone,
  id + RefZone]``, otherwise it is uniform over all parts.
* **Workload** — three operations, each run (by default) 10 times with
  response time measured per run:

  - *Lookup*: access 1000 randomly selected parts;
  - *Traversal*: from a random root, depth-first through the ``Connect``
    and ``To`` references up to seven hops (3280 parts, duplicates
    included); also a *reverse traversal* that swaps ``To`` and ``From``
    by walking back references;
  - *Insert*: add 100 parts (plus their connections) and commit.

The implementation reports both wall-clock and simulated response times
plus page-I/O counts, and feeds every link crossing to an optional
clustering policy so DSTC can observe OO1 workloads (the substrate that
DSTC-CluB builds on).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.errors import ParameterError, WorkloadError
from repro.rand.lewis_payne import DEFAULT_SEED, LewisPayne
from repro.store.serializer import StoredObject
from repro.store.storage import ObjectStore, StoreConfig

__all__ = ["OO1Parameters", "OO1Database", "OO1RunResult", "OO1Benchmark",
           "PART_CLASS", "CONNECTION_CLASS"]

PART_CLASS = 1
CONNECTION_CLASS = 2

#: OO1 field payloads (type strings, coordinates, dates), in bytes.
_PART_PAYLOAD = 30
_CONNECTION_PAYLOAD = 24

_STREAM_BUILD = 0x001_0001
_STREAM_WORKLOAD = 0x001_0002


@dataclass(frozen=True)
class OO1Parameters:
    """Knobs of the OO1 database and workload."""

    num_parts: int = 20000
    connections_per_part: int = 3
    ref_zone: Optional[int] = None          # None -> 1% of num_parts.
    locality_probability: float = 0.9
    lookups_per_run: int = 1000
    traversal_depth: int = 7
    inserts_per_run: int = 100
    runs: int = 10
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.num_parts < 2:
            raise ParameterError(f"num_parts must be >= 2, got {self.num_parts}")
        if self.connections_per_part < 1:
            raise ParameterError("connections_per_part must be >= 1, got "
                                 f"{self.connections_per_part}")
        if not 0.0 <= self.locality_probability <= 1.0:
            raise ParameterError("locality_probability must be in [0, 1]")
        for label in ("lookups_per_run", "traversal_depth",
                      "inserts_per_run", "runs"):
            if getattr(self, label) < 1:
                raise ParameterError(f"{label} must be >= 1")

    @property
    def effective_ref_zone(self) -> int:
        """RefZone, defaulting to 1 % of the part population."""
        if self.ref_zone is not None:
            return self.ref_zone
        return max(1, self.num_parts // 100)


class OO1Database:
    """The Part/Connection graph, built per the OO1 generation recipe."""

    def __init__(self, parameters: Optional[OO1Parameters] = None) -> None:
        self.parameters = parameters or OO1Parameters()
        self.part_oids: List[int] = []
        self.connection_oids: List[int] = []
        self.records: Dict[int, StoredObject] = {}
        self._next_oid = 1
        self._built = False

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def build(self) -> Dict[int, StoredObject]:
        """Create all parts, then wire each to three random targets."""
        if self._built:
            return self.records
        p = self.parameters
        rng = LewisPayne(p.seed).spawn(_STREAM_BUILD)

        # 1. Create all Part objects and store them in a dictionary.
        for _ in range(p.num_parts):
            oid = self._allocate()
            self.part_oids.append(oid)
            self.records[oid] = StoredObject(
                oid=oid, cid=PART_CLASS,
                refs=(None,) * p.connections_per_part,
                filler=_PART_PAYLOAD)

        # 2. For each part, choose three targets and create connections.
        back_refs: Dict[int, List[Tuple[int, int]]] = {
            oid: [] for oid in self.records}
        part_refs: Dict[int, List[Optional[int]]] = {
            oid: [None] * p.connections_per_part for oid in self.part_oids}
        for index_in_parts, source in enumerate(self.part_oids):
            for slot in range(p.connections_per_part):
                target = self._draw_target(rng, index_in_parts)
                conn_oid = self._allocate()
                self.connection_oids.append(conn_oid)
                # Connection.refs = (To part, From part).
                self.records[conn_oid] = StoredObject(
                    oid=conn_oid, cid=CONNECTION_CLASS,
                    refs=(target, source),
                    filler=_CONNECTION_PAYLOAD)
                back_refs.setdefault(conn_oid, [])
                back_refs[target].append((conn_oid, 0))
                back_refs[source].append((conn_oid, 1))
                part_refs[source][slot] = conn_oid
                back_refs[conn_oid].append((source, slot))

        for oid in self.part_oids:
            self.records[oid] = self.records[oid].with_refs(
                tuple(part_refs[oid]))
        for oid, pairs in back_refs.items():
            self.records[oid] = self.records[oid].with_back_refs(tuple(pairs))
        self._built = True
        return self.records

    def _draw_target(self, rng: LewisPayne, source_index: int) -> int:
        """OO1's reference-zone rule on the part id space."""
        p = self.parameters
        zone = p.effective_ref_zone
        if rng.random() < p.locality_probability:
            low = max(0, source_index - zone)
            high = min(p.num_parts - 1, source_index + zone)
        else:
            low, high = 0, p.num_parts - 1
        return self.part_oids[rng.randint(low, high)]

    def _allocate(self) -> int:
        oid = self._next_oid
        self._next_oid += 1
        return oid

    def sizes(self) -> Dict[int, int]:
        """oid -> serialized size (placement context input)."""
        return {oid: record.size for oid, record in self.records.items()}


@dataclass
class OO1RunResult:
    """Metrics of one timed OO1 run."""

    operation: str
    objects_accessed: int
    io_reads: int
    io_writes: int
    sim_seconds: float
    wall_seconds: float


@dataclass
class OO1Report:
    """All runs of one operation."""

    operation: str
    runs: List[OO1RunResult] = field(default_factory=list)

    @property
    def mean_reads(self) -> float:
        """Mean page reads per run."""
        if not self.runs:
            return 0.0
        return sum(r.io_reads for r in self.runs) / len(self.runs)

    @property
    def mean_sim_seconds(self) -> float:
        """Mean simulated response time per run."""
        if not self.runs:
            return 0.0
        return sum(r.sim_seconds for r in self.runs) / len(self.runs)


class OO1Benchmark:
    """Lookup / traversal / insert, measured per run."""

    def __init__(self, database: OO1Database, store: ObjectStore,
                 policy: Optional[ClusteringPolicy] = None,
                 rng: Optional[LewisPayne] = None) -> None:
        if store.object_count == 0:
            raise WorkloadError("bulk-load the OO1 database before running")
        self.database = database
        self.store = store
        self.policy = policy or NoClustering()
        self._rng = rng or LewisPayne(
            database.parameters.seed).spawn(_STREAM_WORKLOAD)

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def lookup_run(self) -> OO1RunResult:
        """Access ``lookups_per_run`` randomly selected parts."""
        return self._timed("lookup", self._do_lookup)

    def traversal_run(self, reverse: bool = False) -> OO1RunResult:
        """Depth-first traversal from a random root (optionally reversed)."""
        name = "reverse-traversal" if reverse else "traversal"
        return self._timed(name, lambda: self._do_traversal(reverse))

    def insert_run(self) -> OO1RunResult:
        """Insert ``inserts_per_run`` parts plus connections; commit."""
        return self._timed("insert", self._do_insert)

    def run_all(self) -> Dict[str, OO1Report]:
        """The full OO1 protocol: each operation, ``runs`` times."""
        reports = {name: OO1Report(name) for name in
                   ("lookup", "traversal", "reverse-traversal", "insert")}
        for _ in range(self.database.parameters.runs):
            reports["lookup"].runs.append(self.lookup_run())
            reports["traversal"].runs.append(self.traversal_run())
            reports["reverse-traversal"].runs.append(
                self.traversal_run(reverse=True))
            reports["insert"].runs.append(self.insert_run())
        return reports

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _timed(self, name, body) -> OO1RunResult:
        before = self.store.snapshot()
        wall_start = time.perf_counter()
        accessed = body()
        wall = time.perf_counter() - wall_start
        delta = self.store.snapshot() - before
        self.policy.on_transaction_end()
        return OO1RunResult(operation=name,
                            objects_accessed=accessed,
                            io_reads=delta.io_reads,
                            io_writes=delta.io_writes,
                            sim_seconds=delta.sim_time,
                            wall_seconds=wall)

    def _access(self, oid: int, source: Optional[int] = None) -> StoredObject:
        record = self.store.read_object(oid)
        self.policy.observe_access(source, oid, None)
        return record

    def _do_lookup(self) -> int:
        p = self.database.parameters
        count = 0
        for _ in range(p.lookups_per_run):
            oid = self._rng.choice(self.database.part_oids)
            self._access(oid)
            count += 1
        return count

    def _do_traversal(self, reverse: bool) -> int:
        p = self.database.parameters
        root = self._rng.choice(self.database.part_oids)
        visited = 0

        def visit_part(part: StoredObject, depth: int) -> None:
            nonlocal visited
            visited += 1
            if depth >= p.traversal_depth:
                return
            if not reverse:
                # Part -> Connection (Connect) -> To part.
                for conn_oid in part.refs:
                    if conn_oid is None:
                        continue
                    connection = self._access(conn_oid, source=part.oid)
                    to_part = connection.refs[0]
                    if to_part is None:
                        continue
                    child = self._access(to_part, source=conn_oid)
                    visit_part(child, depth + 1)
            else:
                # Swap To and From: follow connections pointing AT us.
                for src_oid, slot in part.back_refs:
                    if slot != 0:  # Only connections whose To is this part.
                        continue
                    connection = self._access(src_oid, source=part.oid)
                    from_part = connection.refs[1]
                    if from_part is None:
                        continue
                    child = self._access(from_part, source=src_oid)
                    visit_part(child, depth + 1)

        visit_part(self._access(root), 0)
        return visited

    def _do_insert(self) -> int:
        p = self.database.parameters
        created = 0
        new_parts: List[int] = []
        for _ in range(p.inserts_per_run):
            part_oid = self.database._allocate()
            refs: List[Optional[int]] = []
            conn_records: List[StoredObject] = []
            for _ in range(p.connections_per_part):
                target = self._rng.choice(self.database.part_oids)
                conn_oid = self.database._allocate()
                conn_records.append(StoredObject(
                    oid=conn_oid, cid=CONNECTION_CLASS,
                    refs=(target, part_oid), filler=_CONNECTION_PAYLOAD))
                refs.append(conn_oid)
            part = StoredObject(oid=part_oid, cid=PART_CLASS,
                                refs=tuple(refs), filler=_PART_PAYLOAD)
            self.store.insert_object(part)
            self.database.records[part_oid] = part
            self.database.part_oids.append(part_oid)
            for conn in conn_records:
                self.store.insert_object(conn)
                self.database.records[conn.oid] = conn
                self.database.connection_oids.append(conn.oid)
            new_parts.append(part_oid)
            created += 1 + p.connections_per_part
        self.store.flush()  # OO1: "Commit the changes."
        return created


def build_oo1_store(parameters: Optional[OO1Parameters] = None,
                    store_config: Optional[StoreConfig] = None
                    ) -> Tuple[OO1Database, ObjectStore]:
    """Convenience: build the database and bulk-load it into a store."""
    database = OO1Database(parameters)
    records = database.build()
    store = (store_config or StoreConfig()).build()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    return database, store

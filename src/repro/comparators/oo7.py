"""OO7 (Carey, DeWitt & Naughton) — Section 2.3 of the OCB paper.

A faithful, small-configuration OO7 implementation over the shared store:

* **Database** — per module: a 7-level *assembly hierarchy* (fan-out 3;
  complex assemblies above, base assemblies at the leaves), a pool of
  *composite parts* (each with a private graph of *atomic parts* wired by
  *connections*, plus a *document*), and base assemblies referencing
  ``comp_per_assm`` shared composite parts.  Class ids follow the design
  hierarchy (module / complex assembly / base assembly / composite part /
  atomic part / connection / document / manual).
* **Workload** — the three published groups:

  - *Traversals*: T1 (full DFS touching every atomic part graph),
    T2 (T1 with an update on one atomic part per composite — the "a"
    variant), T6 (DFS touching only the root atomic part per composite);
  - *Queries*: Q1 (lookup of random atomic parts by id), Q2/Q3 (range on
    the atomic-part build date, 1 % / 10 %), Q4 (document lookups), Q7
    (scan of all atomic parts);
  - *Structural modifications*: SM1 (insert composite parts),
    SM2 (delete them again).

OO7's small configuration defaults are scaled down by default so a unit
run stays fast; the standard "small" shape (729 base assemblies, 500
composite parts, 20 atomic parts each) is one constructor call away.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clustering.base import ClusteringPolicy, NoClustering
from repro.errors import ParameterError, WorkloadError
from repro.rand.lewis_payne import DEFAULT_SEED, LewisPayne
from repro.store.serializer import StoredObject
from repro.store.storage import ObjectStore, StoreConfig

__all__ = ["OO7Parameters", "OO7Database", "OO7RunResult", "OO7Benchmark"]

MODULE_CLASS = 1
COMPLEX_ASSEMBLY_CLASS = 2
BASE_ASSEMBLY_CLASS = 3
COMPOSITE_PART_CLASS = 4
ATOMIC_PART_CLASS = 5
CONNECTION_CLASS = 6
DOCUMENT_CLASS = 7
MANUAL_CLASS = 8

_PAYLOADS = {
    MODULE_CLASS: 60,
    COMPLEX_ASSEMBLY_CLASS: 40,
    BASE_ASSEMBLY_CLASS: 40,
    COMPOSITE_PART_CLASS: 60,
    ATOMIC_PART_CLASS: 28,
    CONNECTION_CLASS: 16,
    DOCUMENT_CLASS: 200,
    MANUAL_CLASS: 400,
}

_STREAM_BUILD = 0x0007_0001
_STREAM_WORKLOAD = 0x0007_0002


@dataclass(frozen=True)
class OO7Parameters:
    """Shape of the OO7 database (defaults: a fast reduced-small config)."""

    num_modules: int = 1
    assembly_levels: int = 4          # OO7 small: 7.
    assembly_fan_out: int = 3
    comp_per_module: int = 50         # OO7 small: 500.
    comp_per_assm: int = 3
    atomic_per_comp: int = 20
    connections_per_atomic: int = 3
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        for label in ("num_modules", "assembly_levels", "assembly_fan_out",
                      "comp_per_module", "comp_per_assm", "atomic_per_comp",
                      "connections_per_atomic"):
            if getattr(self, label) < 1:
                raise ParameterError(f"{label} must be >= 1")

    @classmethod
    def small(cls, seed: int = DEFAULT_SEED) -> "OO7Parameters":
        """The published OO7 "small" configuration."""
        return cls(num_modules=1, assembly_levels=7, assembly_fan_out=3,
                   comp_per_module=500, comp_per_assm=3, atomic_per_comp=20,
                   connections_per_atomic=3, seed=seed)


class OO7Database:
    """Builder for the OO7 object graph."""

    def __init__(self, parameters: Optional[OO7Parameters] = None) -> None:
        self.parameters = parameters or OO7Parameters()
        self.records: Dict[int, StoredObject] = {}
        self.module_oids: List[int] = []
        self.base_assembly_oids: List[int] = []
        self.composite_oids: List[int] = []
        self.atomic_oids: List[int] = []
        self.document_oids: List[int] = []
        #: atomic part oid -> build date (Q2/Q3 predicate attribute).
        self.build_dates: Dict[int, int] = {}
        #: composite oid -> root atomic part oid (T6 entry point).
        self.root_atomic: Dict[int, int] = {}
        self._next_oid = 1
        self._built = False
        self._refs: Dict[int, List[Optional[int]]] = {}
        self._back: Dict[int, List[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def build(self) -> Dict[int, StoredObject]:
        """Create modules, assembly trees, composite parts and documents."""
        if self._built:
            return self.records
        p = self.parameters
        rng = LewisPayne(p.seed).spawn(_STREAM_BUILD)

        for _ in range(p.num_modules):
            composites = [self._new_composite(rng)
                          for _ in range(p.comp_per_module)]
            self.composite_oids.extend(composites)
            module = self._new(MODULE_CLASS, slots=1)
            self.module_oids.append(module)
            root_assembly = self._build_assembly(rng, 1, composites)
            self._link(module, 0, root_assembly)

        self._finalise()
        self._built = True
        return self.records

    def _build_assembly(self, rng: LewisPayne, level: int,
                        composites: Sequence[int]) -> int:
        p = self.parameters
        if level == p.assembly_levels:  # Base assembly.
            oid = self._new(BASE_ASSEMBLY_CLASS, slots=p.comp_per_assm)
            self.base_assembly_oids.append(oid)
            for slot in range(p.comp_per_assm):
                target = composites[rng.randint(0, len(composites) - 1)]
                self._link(oid, slot, target)
            return oid
        oid = self._new(COMPLEX_ASSEMBLY_CLASS, slots=p.assembly_fan_out)
        for slot in range(p.assembly_fan_out):
            child = self._build_assembly(rng, level + 1, composites)
            self._link(oid, slot, child)
        return oid

    def _new_composite(self, rng: LewisPayne) -> int:
        p = self.parameters
        atomic = [self._new(ATOMIC_PART_CLASS,
                            slots=p.connections_per_atomic)
                  for _ in range(p.atomic_per_comp)]
        self.atomic_oids.extend(atomic)
        for oid in atomic:
            self.build_dates[oid] = rng.randint(0, 99_999)
        # Connection ring + chords, as in OO7: each atomic part connects
        # to `connections_per_atomic` others of the same composite.
        for index, source in enumerate(atomic):
            for c in range(p.connections_per_atomic):
                if c == 0:
                    target = atomic[(index + 1) % len(atomic)]
                else:
                    target = atomic[rng.randint(0, len(atomic) - 1)]
                conn = self._new(CONNECTION_CLASS, slots=1)
                self._link(source, c, conn)
                self._link(conn, 0, target)

        document = self._new(DOCUMENT_CLASS, slots=0)
        self.document_oids.append(document)
        composite = self._new(COMPOSITE_PART_CLASS, slots=2)
        self._link(composite, 0, atomic[0])  # Root atomic part.
        self._link(composite, 1, document)
        self.root_atomic[composite] = atomic[0]
        return composite

    def _new(self, cid: int, slots: int) -> int:
        oid = self._next_oid
        self._next_oid += 1
        self._refs[oid] = [None] * slots
        self._back[oid] = []
        self.records[oid] = StoredObject(oid=oid, cid=cid,
                                         refs=(None,) * slots,
                                         filler=_PAYLOADS[cid])
        return oid

    def _link(self, source: int, slot: int, target: int) -> None:
        self._refs[source][slot] = target
        self._back[target].append((source, slot))

    def _finalise(self) -> None:
        for oid, record in list(self.records.items()):
            self.records[oid] = StoredObject(
                oid=oid, cid=record.cid,
                refs=tuple(self._refs[oid]),
                back_refs=tuple(self._back[oid]),
                filler=record.filler)

    def sizes(self) -> Dict[int, int]:
        """oid -> serialized size."""
        return {oid: record.size for oid, record in self.records.items()}

    def atomic_parts_with_date_in(self, low: int, high: int) -> List[int]:
        """Index lookup for Q2/Q3 build-date ranges."""
        return [oid for oid, date in self.build_dates.items()
                if low <= date <= high]


@dataclass
class OO7RunResult:
    """Metrics of one OO7 operation run."""

    operation: str
    objects_accessed: int
    io_reads: int
    io_writes: int
    sim_seconds: float
    wall_seconds: float


class OO7Benchmark:
    """Traversals, queries and structural modifications."""

    def __init__(self, database: OO7Database, store: ObjectStore,
                 policy: Optional[ClusteringPolicy] = None) -> None:
        if store.object_count == 0:
            raise WorkloadError("bulk-load the OO7 database before running")
        self.database = database
        self.store = store
        self.policy = policy or NoClustering()
        self._rng = LewisPayne(
            database.parameters.seed).spawn(_STREAM_WORKLOAD)

    # ------------------------------------------------------------------ #
    # Public operations
    # ------------------------------------------------------------------ #

    def t1_traversal(self) -> OO7RunResult:
        """Full DFS: assemblies -> composites -> entire atomic graphs."""
        return self._timed("T1", lambda: self._traverse(full=True,
                                                        update=False))

    def t2_traversal(self) -> OO7RunResult:
        """T1 plus one atomic-part update per composite (variant a)."""
        return self._timed("T2", lambda: self._traverse(full=True,
                                                        update=True))

    def t6_traversal(self) -> OO7RunResult:
        """DFS touching only each composite's root atomic part."""
        return self._timed("T6", lambda: self._traverse(full=False,
                                                        update=False))

    def q1_lookup(self, count: int = 10) -> OO7RunResult:
        """Fetch *count* random atomic parts by id."""
        def body() -> int:
            for _ in range(count):
                oid = self._rng.choice(self.database.atomic_oids)
                self._access(oid)
            return count
        return self._timed("Q1", body)

    def q2_range(self) -> OO7RunResult:
        """Atomic parts in the most recent 1 % of build dates."""
        return self._timed("Q2", lambda: self._range_query(0.01))

    def q3_range(self) -> OO7RunResult:
        """Atomic parts in the most recent 10 % of build dates."""
        return self._timed("Q3", lambda: self._range_query(0.10))

    def q4_documents(self, count: int = 10) -> OO7RunResult:
        """Random document lookups (join with composite parts)."""
        def body() -> int:
            accessed = 0
            for _ in range(count):
                composite = self._rng.choice(self.database.composite_oids)
                record = self._access(composite)
                document = record.refs[1]
                if document is not None:
                    self._access(document, source=composite)
                    accessed += 1
            return count + accessed
        return self._timed("Q4", body)

    def q7_scan(self) -> OO7RunResult:
        """Scan every atomic part."""
        def body() -> int:
            for oid in self.database.atomic_oids:
                self._access(oid)
            return len(self.database.atomic_oids)
        return self._timed("Q7", body)

    def sm1_insert(self, count: int = 5) -> OO7RunResult:
        """Insert *count* new composite parts (with atomic graphs)."""
        def body() -> int:
            created = 0
            for _ in range(count):
                composite = self.database._new_composite(self._rng)
                self.database._finalise()
                # Insert the composite and everything it reaches that is
                # not yet stored.
                for oid in sorted(self.database.records):
                    if oid not in self.store:
                        self.store.insert_object(self.database.records[oid])
                        created += 1
                self.database.composite_oids.append(composite)
            self.store.flush()
            return created
        return self._timed("SM1", body)

    def sm2_delete(self, count: int = 5) -> OO7RunResult:
        """Delete up to *count* *unreferenced* composite parts.

        Only composites no assembly points at (i.e. the ones SM1 created)
        are removed, so the assembly hierarchy never dangles.
        """
        def body() -> int:
            removed = 0
            candidates = []
            for composite in reversed(self.database.composite_oids):
                if len(candidates) >= count:
                    break
                record = self.store.read_object(composite)
                if not record.back_refs:
                    candidates.append(composite)
            for composite in candidates:
                self.database.composite_oids.remove(composite)
                record = self.store.read_object(composite)
                # Delete the composite, its document and its atomic graph.
                doomed = {composite}
                frontier = [t for t in record.refs if t is not None]
                while frontier:
                    oid = frontier.pop()
                    if oid in doomed or oid not in self.store:
                        continue
                    child = self.store.read_object(oid)
                    if child.cid in (ATOMIC_PART_CLASS, CONNECTION_CLASS,
                                     DOCUMENT_CLASS):
                        doomed.add(oid)
                        frontier.extend(t for t in child.refs if t is not None)
                for oid in doomed:
                    if oid in self.store:
                        self.store.delete_object(oid)
                        removed += 1
            self.store.flush()
            return removed
        return self._timed("SM2", body)

    def run_suite(self) -> Dict[str, OO7RunResult]:
        """One run of every implemented operation."""
        return {
            "T1": self.t1_traversal(),
            "T2": self.t2_traversal(),
            "T6": self.t6_traversal(),
            "Q1": self.q1_lookup(),
            "Q2": self.q2_range(),
            "Q3": self.q3_range(),
            "Q4": self.q4_documents(),
            "Q7": self.q7_scan(),
            "SM1": self.sm1_insert(),
            "SM2": self.sm2_delete(),
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _timed(self, name, body) -> OO7RunResult:
        before = self.store.snapshot()
        start = time.perf_counter()
        accessed = body()
        wall = time.perf_counter() - start
        delta = self.store.snapshot() - before
        self.policy.on_transaction_end()
        return OO7RunResult(operation=name, objects_accessed=accessed,
                            io_reads=delta.io_reads,
                            io_writes=delta.io_writes,
                            sim_seconds=delta.sim_time,
                            wall_seconds=wall)

    def _access(self, oid: int, source: Optional[int] = None) -> StoredObject:
        record = self.store.read_object(oid)
        self.policy.observe_access(source, oid, None)
        return record

    def _traverse(self, full: bool, update: bool) -> int:
        accessed = 0
        for module in self.database.module_oids:
            record = self._access(module)
            accessed += 1
            stack = [t for t in record.refs if t is not None]
            while stack:
                oid = stack.pop()
                node = self._access(oid, source=record.oid)
                accessed += 1
                if node.cid in (COMPLEX_ASSEMBLY_CLASS, BASE_ASSEMBLY_CLASS):
                    stack.extend(t for t in node.refs if t is not None)
                elif node.cid == COMPOSITE_PART_CLASS:
                    accessed += self._visit_composite(node, full, update)
        return accessed

    def _visit_composite(self, composite: StoredObject, full: bool,
                         update: bool) -> int:
        root = composite.refs[0]
        if root is None:
            return 0
        if not full:
            self._access(root, source=composite.oid)
            return 1
        # DFS over the atomic graph through connections.
        accessed = 0
        seen = {root}
        stack = [root]
        first_atomic: Optional[StoredObject] = None
        while stack:
            oid = stack.pop()
            atomic = self._access(oid, source=composite.oid)
            if first_atomic is None:
                first_atomic = atomic
            accessed += 1
            for conn_oid in atomic.refs:
                if conn_oid is None:
                    continue
                connection = self._access(conn_oid, source=oid)
                accessed += 1
                target = connection.refs[0]
                if target is not None and target not in seen:
                    seen.add(target)
                    stack.append(target)
        if update and first_atomic is not None:
            self.store.write_object(first_atomic)
        return accessed

    def _range_query(self, fraction: float) -> int:
        high = 99_999
        low = int(high * (1.0 - fraction))
        matches = self.database.atomic_parts_with_date_in(low, high)
        for oid in matches:
            self._access(oid)
        return len(matches)


def build_oo7_store(parameters: Optional[OO7Parameters] = None,
                    store_config: Optional[StoreConfig] = None
                    ) -> Tuple[OO7Database, ObjectStore]:
    """Convenience: build and bulk-load an OO7 database."""
    database = OO7Database(parameters)
    records = database.build()
    store = (store_config or StoreConfig()).build()
    store.bulk_load(records.values(), order=sorted(records))
    store.reset_stats()
    return database, store

"""Comparator benchmarks: OO1, DSTC-CluB, HyperModel, OO7.

These are the benchmarks of the paper's Related Work (Section 2) and
validation (Section 4), implemented over the same Texas-like store so that
OCB's genericity claims ("OCB can be tuned to mimic the behavior of
another benchmark") can be tested head to head.
"""

from repro.comparators.dstc_club import DSTCClubBenchmark, DSTCClubResult
from repro.comparators.hypermodel import (
    HYPERMODEL_OPERATIONS,
    HyperModelBenchmark,
    HyperModelDatabase,
    HyperModelParameters,
    NodeAttributes,
    OperationReport,
    build_hypermodel_store,
)
from repro.comparators.oo1 import (
    OO1Benchmark,
    OO1Database,
    OO1Parameters,
    OO1Report,
    OO1RunResult,
    build_oo1_store,
)
from repro.comparators.oo7 import (
    OO7Benchmark,
    OO7Database,
    OO7Parameters,
    OO7RunResult,
    build_oo7_store,
)

__all__ = [
    "OO1Benchmark",
    "OO1Database",
    "OO1Parameters",
    "OO1Report",
    "OO1RunResult",
    "build_oo1_store",
    "DSTCClubBenchmark",
    "DSTCClubResult",
    "HyperModelBenchmark",
    "HyperModelDatabase",
    "HyperModelParameters",
    "NodeAttributes",
    "OperationReport",
    "HYPERMODEL_OPERATIONS",
    "build_hypermodel_store",
    "OO7Benchmark",
    "OO7Database",
    "OO7Parameters",
    "OO7RunResult",
    "build_oo7_store",
]

"""DSTC-CluB — the OO1-derived clustering benchmark of Bullat & Schneider.

The paper validates OCB against *DSTC-CluB*, "derived from OO1", whose
single metric is the number of transaction I/Os **before** and **after**
DSTC reorganizes the database (Table 4: 66 -> 5 I/Os, gain 13.2).

Protocol, reconstructed from the paper's description:

1. build the OO1 database and bulk-load it in creation order;
2. run ``transactions`` OO1 depth-7 traversals while the clustering policy
   observes; the mean page reads per traversal is the **before** figure;
3. let the policy reorganize the store (clustering I/O overhead recorded
   separately);
4. drop the caches and replay the *same* traversal roots; the mean is the
   **after** figure; ``gain = before / after``.

The replay uses the same RNG seed, so before/after are paired — the same
requirement OCB's own experiment (:mod:`repro.core.experiment`) enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.clustering.base import ClusteringPolicy, PlacementContext
from repro.clustering.dstc import DSTCParameters, DSTCPolicy
from repro.comparators.oo1 import (
    OO1Benchmark,
    OO1Database,
    OO1Parameters,
    OO1RunResult,
)
from repro.errors import WorkloadError
from repro.rand.lewis_payne import LewisPayne
from repro.store.storage import ObjectStore, ReorganizationStats, StoreConfig

__all__ = ["DSTCClubResult", "DSTCClubBenchmark"]

_STREAM_TRAVERSALS = 0x0C1B_0001


@dataclass
class DSTCClubResult:
    """Before/after I/O figures, matching Table 4's columns."""

    label: str
    before_runs: List[OO1RunResult]
    after_runs: List[OO1RunResult]
    reorganization: Optional[ReorganizationStats]

    @property
    def ios_before(self) -> float:
        """Mean page reads per traversal before reclustering."""
        if not self.before_runs:
            return 0.0
        return sum(r.io_reads for r in self.before_runs) / len(self.before_runs)

    @property
    def ios_after(self) -> float:
        """Mean page reads per traversal after reclustering."""
        if not self.after_runs:
            return self.ios_before
        return sum(r.io_reads for r in self.after_runs) / len(self.after_runs)

    @property
    def gain_factor(self) -> float:
        """The Table 4 "Gain Factor": before / after."""
        after = self.ios_after
        if after <= 0:
            return float("inf") if self.ios_before > 0 else 1.0
        return self.ios_before / after

    @property
    def clustering_overhead_ios(self) -> int:
        """Pages read + written by the physical reorganization."""
        return self.reorganization.total_ios if self.reorganization else 0

    def describe(self) -> str:
        """One line matching the paper's table columns."""
        return (f"{self.label}: {self.ios_before:.1f} I/Os before, "
                f"{self.ios_after:.1f} after, gain {self.gain_factor:.2f}x")


class DSTCClubBenchmark:
    """The DSTC-CluB before/after traversal protocol."""

    def __init__(self, parameters: Optional[OO1Parameters] = None,
                 store_config: Optional[StoreConfig] = None,
                 policy: Optional[ClusteringPolicy] = None,
                 transactions: int = 50,
                 warmup: int = 5) -> None:
        if transactions < 1:
            raise WorkloadError(f"transactions must be >= 1, got {transactions}")
        self.parameters = parameters or OO1Parameters()
        self.store_config = store_config or StoreConfig()
        self.policy = policy if policy is not None else DSTCPolicy(
            DSTCParameters(observation_period=max(1, transactions // 5)))
        self.transactions = transactions
        self.warmup = warmup
        self.database: Optional[OO1Database] = None
        self.store: Optional[ObjectStore] = None

    def setup(self) -> Tuple[OO1Database, ObjectStore]:
        """Build and bulk-load the OO1 database."""
        self.database = OO1Database(self.parameters)
        records = self.database.build()
        self.store = self.store_config.build()
        self.store.bulk_load(records.values(), order=sorted(records))
        self.store.reset_stats()
        return self.database, self.store

    def run(self, label: str = "DSTC-CluB") -> DSTCClubResult:
        """Execute the full before/reorganize/after protocol."""
        if self.database is None or self.store is None:
            self.setup()
        assert self.database is not None and self.store is not None

        before = self._run_traversals(observe=True)
        reorganization = self._reorganize()
        after: List[OO1RunResult] = []
        if reorganization is not None:
            after = self._run_traversals(observe=False)
        return DSTCClubResult(label=label,
                              before_runs=before,
                              after_runs=after,
                              reorganization=reorganization)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _run_traversals(self, observe: bool) -> List[OO1RunResult]:
        assert self.database is not None and self.store is not None
        self.store.drop_caches()
        self.store.reset_stats()
        rng = LewisPayne(self.parameters.seed).spawn(_STREAM_TRAVERSALS)
        bench = OO1Benchmark(self.database, self.store,
                             policy=self.policy if observe else None,
                             rng=rng)
        for _ in range(self.warmup):  # Fill the cache (OCB's cold-run idea).
            bench.traversal_run()
        runs = [bench.traversal_run() for _ in range(self.transactions)]
        return runs

    def _reorganize(self) -> Optional[ReorganizationStats]:
        assert self.database is not None and self.store is not None
        context = PlacementContext(sizes=self.database.sizes(),
                                   page_size=self.store.page_size)
        placement = self.policy.propose_placement(self.store.current_order(),
                                                  context)
        if placement is None:
            return None
        return self.store.reorganize(placement.order,
                                     aligned_groups=placement.aligned_groups)

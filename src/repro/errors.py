"""Exception hierarchy for the OCB reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "GenerationError",
    "StorageError",
    "PageFull",
    "UnknownObject",
    "BackendError",
    "ClusteringError",
    "WorkloadError",
    "SimulationError",
    "ReportingError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A benchmark parameter is missing, out of range, or inconsistent."""


class GenerationError(ReproError):
    """Database generation could not complete (schema or instance phase)."""


class StorageError(ReproError):
    """The object store was asked to do something it cannot."""


class PageFull(StorageError):
    """An object does not fit in the remaining space of a page run."""


class UnknownObject(StorageError, KeyError):
    """An object id is not present in the store directory."""


class BackendError(ReproError):
    """A storage backend is unknown, misconfigured, or misused."""


class ClusteringError(ReproError):
    """A clustering policy was misused or produced an invalid placement."""


class WorkloadError(ReproError):
    """The workload runner hit an unrecoverable condition."""


class SimulationError(ReproError):
    """The discrete-event simulation engine detected an inconsistency."""


class ReportingError(ReproError):
    """Reporting helpers received malformed rows or series."""

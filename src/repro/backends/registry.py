"""Name-based backend registry.

Backends register a *factory* taking the experiment's
:class:`~repro.store.storage.StoreConfig` (so page-size / buffer-size
ablations carry over to engines that honour them) plus free-form keyword
options, and returning a ready :class:`~repro.backends.base.Backend`.

The CLI (``ocb backends``, ``--backend NAME``), the benchmark facade and
the cross-backend harness all resolve engines exclusively through this
module, so registering a new adapter makes it available everywhere at
once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.backends.base import Backend
from repro.errors import BackendError
from repro.store.storage import StoreConfig

__all__ = [
    "BackendFactory",
    "BackendInfo",
    "KNOWN_CAPABILITIES",
    "register_backend",
    "unregister_backend",
    "available_backends",
    "backend_info",
    "backend_names",
    "create_backend",
]

BackendFactory = Callable[..., Backend]


#: Capability tags understood by the CLI listing and the README matrix.
#: Every registered engine runs the three execution paths (traversals,
#: generic operations, multi-user) through the unified kernel; the tags
#: record the optional extras an engine supports natively.
KNOWN_CAPABILITIES: Tuple[str, ...] = (
    "clustering",      # physical reorganization (simulated only)
    "batched-reads",   # native read_many (one round trip per frontier)
    "cold-cache",      # drop_caches really evicts engine state
    "concurrent",      # connect_worker: shared storage, one connection
                       # per OS process (the parallel subsystem's input)
    "sharded",         # oid-residue partitioning across independent
                       # stores with per-worker home-shard affinity
    "ref_index",       # native link-index traverse_refs_many (whole
                       # frontier, no record decode)
    "pipelined",       # pooled-connection submit/collect reads: batches
                       # stay in flight while the caller keeps working
)


@dataclass(frozen=True)
class BackendInfo:
    """One registry entry."""

    name: str
    factory: BackendFactory
    description: str
    wall_clock_only: bool = True  # No simulated cost model.
    capabilities: Tuple[str, ...] = ()

    def create(self, store_config: Optional[StoreConfig] = None,
               **options: object) -> Backend:
        """Instantiate the backend for one experiment."""
        return self.factory(store_config or StoreConfig(), **options)

    def has_capability(self, tag: str) -> bool:
        """Whether the engine declares capability *tag*."""
        return tag in self.capabilities


_REGISTRY: Dict[str, BackendInfo] = {}


def register_backend(name: str, factory: BackendFactory, description: str,
                     wall_clock_only: bool = True,
                     capabilities: "Tuple[str, ...] | List[str]" = (),
                     overwrite: bool = False) -> BackendInfo:
    """Register *factory* under *name*; raise on duplicates.

    ``factory(store_config, **options)`` must return a fresh
    :class:`Backend`.  ``capabilities`` tags the engine's optional
    extras (see :data:`KNOWN_CAPABILITIES`); unknown tags are rejected
    so the capability matrix stays meaningful.  Pass ``overwrite=True``
    to replace an entry (useful in tests and notebooks).
    """
    key = name.strip().lower()
    if not key:
        raise BackendError("backend name must be non-empty")
    if key in _REGISTRY and not overwrite:
        raise BackendError(f"backend {key!r} is already registered")
    tags = tuple(capabilities)
    unknown = [tag for tag in tags if tag not in KNOWN_CAPABILITIES]
    if unknown:
        raise BackendError(
            f"unknown capability tags {unknown}; "
            f"known: {list(KNOWN_CAPABILITIES)}")
    info = BackendInfo(name=key, factory=factory, description=description,
                       wall_clock_only=wall_clock_only, capabilities=tags)
    _REGISTRY[key] = info
    return info


def unregister_backend(name: str) -> None:
    """Remove a registry entry (no-op if absent)."""
    _REGISTRY.pop(name.strip().lower(), None)


def available_backends() -> List[BackendInfo]:
    """All registered backends, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def backend_names() -> List[str]:
    """Sorted registered names (CLI choices)."""
    return sorted(_REGISTRY)


def backend_info(name: str) -> BackendInfo:
    """The registry entry for *name*.

    The one by-name lookup every capability consumer shares (the CLI
    listing, the parallel coordinator's ``concurrent`` check); unknown
    names raise :class:`~repro.errors.BackendError` listing the
    alternatives.
    """
    key = name.strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


def create_backend(name: str, store_config: Optional[StoreConfig] = None,
                   **options: object) -> Backend:
    """Instantiate the backend registered as *name*.

    The *store_config* is forwarded so engines can honour the
    experiment's page size and buffer budget; unknown names raise
    :class:`~repro.errors.BackendError` listing the alternatives.
    """
    return backend_info(name).create(store_config, **options)

"""SQLite backend — the first *real* engine behind the OCB workload.

Objects are serialized with :mod:`repro.store.serializer` (the same
canonical byte format the simulated store pages out) into a single
indexed table::

    CREATE TABLE objects (
        oid  INTEGER PRIMARY KEY,   -- the rowid: physical order == oid order
        cid  INTEGER NOT NULL,
        data BLOB    NOT NULL
    )

The page size and page-cache budget are configurable through SQLite
pragmas and default to the experiment's
:class:`~repro.store.storage.StoreConfig`, so the paper's buffer-size
ablations (``--buffer-pages``) carry over unchanged: a run with a
384-page simulated buffer compares against SQLite with a 384-page cache.

All measurements are wall-clock — SQLite does its own paging, caching
and journaling, which is exactly what the benchmark wants to observe.

Two kernel hooks make the engine first-class under the unified
:class:`~repro.core.session.Session`:

* **batched access** — :meth:`SQLiteBackend.read_many` answers a whole
  BFS frontier (or range-lookup match set) with one ``IN``-clause query
  and :meth:`SQLiteBackend.write_many` is a single ``executemany``;
  ``sql_round_trips`` in :meth:`SQLiteBackend.stats` counts issued
  statements so the saving is measurable;
* **cold-cache control** — :meth:`SQLiteBackend.drop_caches` closes and
  reopens the connection (re-applying the pragmas) for file databases,
  and releases the pager cache in place for ``:memory:`` ones.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.backends.base import Backend
from repro.errors import BackendError, StorageError, UnknownObject
from repro.store.costs import DEFAULT_PAGE_SIZE
from repro.store.serializer import StoredObject, decode_object, encode_object
from repro.store.storage import stage_bulk_load

__all__ = ["SQLiteBackend"]

#: Page sizes SQLite accepts (powers of two, 512..65536).
_VALID_PAGE_SIZES = tuple(512 << i for i in range(8))

#: IN-clause batch ceiling, below SQLite's default 999-variable limit.
_MAX_BATCH_VARIABLES = 500


class SQLiteBackend(Backend):
    """Serialized objects in an indexed SQLite table."""

    name = "sqlite"
    supports_batched_reads = True
    supports_batched_writes = True

    def __init__(self, path: str = ":memory:",
                 page_size: int = DEFAULT_PAGE_SIZE,
                 cache_pages: int = 128,
                 synchronous: str = "OFF",
                 journal_mode: str = "MEMORY") -> None:
        super().__init__()
        if page_size not in _VALID_PAGE_SIZES:
            raise BackendError(
                f"SQLite page_size must be one of {_VALID_PAGE_SIZES}, "
                f"got {page_size}")
        if cache_pages < 1:
            raise BackendError(f"cache_pages must be >= 1, got {cache_pages}")
        self.path = path
        self.page_size = page_size
        self.cache_pages = cache_pages
        self.synchronous = synchronous
        self.journal_mode = journal_mode
        self.sql_round_trips = 0
        self._conn = self._connect()

    def _connect(self) -> sqlite3.Connection:
        try:
            conn = sqlite3.connect(self.path)
        except sqlite3.Error as exc:
            raise BackendError(
                f"cannot open SQLite database {self.path!r}: {exc}") from exc
        cur = conn.cursor()
        # page_size must be set before the first table is created.
        cur.execute(f"PRAGMA page_size = {self.page_size}")
        cur.execute(f"PRAGMA cache_size = {self.cache_pages}")
        cur.execute(f"PRAGMA synchronous = {self.synchronous}")
        cur.execute(f"PRAGMA journal_mode = {self.journal_mode}")
        cur.execute(
            "CREATE TABLE IF NOT EXISTS objects ("
            " oid  INTEGER PRIMARY KEY,"
            " cid  INTEGER NOT NULL,"
            " data BLOB    NOT NULL)")
        cur.execute(
            "CREATE INDEX IF NOT EXISTS objects_by_class ON objects (cid)")
        conn.commit()
        return conn

    # -- lifecycle ------------------------------------------------------ #

    def bulk_load(self, records: Iterable[StoredObject],
                  order: Optional[Sequence[int]] = None) -> int:
        if self.object_count:
            raise StorageError("bulk_load requires an empty backend")
        sequence = stage_bulk_load(records, order)
        self._conn.executemany(
            "INSERT INTO objects (oid, cid, data) VALUES (?, ?, ?)",
            ((r.oid, r.cid, encode_object(r)) for r in sequence))
        self._conn.commit()
        return self._pragma_int("page_count")

    def read_object(self, oid: int) -> StoredObject:
        self.sql_round_trips += 1
        row = self._conn.execute(
            "SELECT data FROM objects WHERE oid = ?", (oid,)).fetchone()
        if row is None:
            raise UnknownObject(oid)
        self.object_accesses += 1
        return decode_object(row[0])

    def read_many(self, oids: Sequence[int]) -> Dict[int, StoredObject]:
        """One ``IN``-clause query per batch (chunked below the SQLite
        variable limit) — the whole BFS frontier in one round trip."""
        unique: List[int] = list(dict.fromkeys(oids))
        records: Dict[int, StoredObject] = {}
        for start in range(0, len(unique), _MAX_BATCH_VARIABLES):
            chunk = unique[start:start + _MAX_BATCH_VARIABLES]
            placeholders = ",".join("?" * len(chunk))
            self.sql_round_trips += 1
            for oid, data in self._conn.execute(
                    f"SELECT oid, data FROM objects "
                    f"WHERE oid IN ({placeholders})", chunk):
                records[oid] = decode_object(data)
        if len(records) != len(unique):
            missing = next(oid for oid in unique if oid not in records)
            raise UnknownObject(missing)
        self.object_accesses += len(unique)
        return records

    def write_object(self, record: StoredObject) -> None:
        self.sql_round_trips += 1
        cur = self._conn.execute(
            "UPDATE objects SET cid = ?, data = ? WHERE oid = ?",
            (record.cid, encode_object(record), record.oid))
        if cur.rowcount == 0:
            raise UnknownObject(record.oid)
        self.object_accesses += 1

    def write_many(self, records: Sequence[StoredObject]) -> None:
        """A single ``executemany`` round trip for the whole batch."""
        if not records:
            return
        self.sql_round_trips += 1
        cur = self._conn.executemany(
            "UPDATE objects SET cid = ?, data = ? WHERE oid = ?",
            ((r.cid, encode_object(r), r.oid) for r in records))
        if cur.rowcount != len(records):
            for record in records:
                if record.oid not in self:
                    raise UnknownObject(record.oid)
        self.object_accesses += len(records)

    def insert_object(self, record: StoredObject) -> None:
        self.sql_round_trips += 1
        try:
            self._conn.execute(
                "INSERT INTO objects (oid, cid, data) VALUES (?, ?, ?)",
                (record.oid, record.cid, encode_object(record)))
        except sqlite3.IntegrityError:
            raise StorageError(f"oid {record.oid} already exists") from None
        self.object_accesses += 1

    def delete_object(self, oid: int) -> None:
        self.sql_round_trips += 1
        cur = self._conn.execute("DELETE FROM objects WHERE oid = ?", (oid,))
        if cur.rowcount == 0:
            raise UnknownObject(oid)
        self.object_accesses += 1

    def drop_caches(self) -> bool:
        """Cold restart: drop the pager cache (and any OS-visible state).

        File databases get the honest treatment — commit, close, reopen,
        re-apply the pragmas.  ``:memory:`` databases would lose their
        data on close, so the pager cache is released in place
        (``PRAGMA shrink_memory``) and the cache budget re-asserted.
        """
        self._conn.commit()
        if self.path == ":memory:":
            self._conn.execute("PRAGMA shrink_memory")
            self._conn.execute(f"PRAGMA cache_size = {self.cache_pages}")
            return True
        self._conn.close()
        self._conn = self._connect()
        return True

    def flush(self) -> int:
        """Commit the open transaction (write-back point for mutations)."""
        self._conn.commit()
        return 0

    def stats(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "page_size": self._pragma_int("page_size"),
            "cache_pages": self.cache_pages,
            "pages": self._pragma_int("page_count"),
            "freelist_pages": self._pragma_int("freelist_count"),
            "objects": self.object_count,
            "object_accesses": self.object_accesses,
            "sql_round_trips": self.sql_round_trips,
            "sqlite_version": sqlite3.sqlite_version,
        }

    def reset_stats(self) -> None:
        super().reset_stats()
        self.sql_round_trips = 0

    def close(self) -> None:
        self._conn.commit()
        self._conn.close()

    # -- accounting surface --------------------------------------------- #

    @property
    def object_count(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM objects").fetchone()
        return count

    def iter_oids(self) -> Iterator[int]:
        for (oid,) in self._conn.execute("SELECT oid FROM objects"):
            yield oid

    def current_order(self) -> List[int]:
        """rowid order — for an INTEGER PRIMARY KEY this is oid order."""
        return [oid for (oid,) in self._conn.execute(
            "SELECT oid FROM objects ORDER BY rowid")]

    def oids_of_class(self, cid: int) -> Tuple[int, ...]:
        """Class-extent lookup through the secondary index."""
        return tuple(oid for (oid,) in self._conn.execute(
            "SELECT oid FROM objects WHERE cid = ? ORDER BY oid", (cid,)))

    def _pragma_int(self, name: str) -> int:
        (value,) = self._conn.execute(f"PRAGMA {name}").fetchone()
        return int(value)

    def __contains__(self, oid: int) -> bool:
        return self._conn.execute(
            "SELECT 1 FROM objects WHERE oid = ?", (oid,)).fetchone() \
            is not None

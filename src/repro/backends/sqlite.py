"""SQLite backend — the first *real* engine behind the OCB workload.

Objects are serialized with :mod:`repro.store.serializer` (the same
canonical byte format the simulated store pages out) into a single
indexed table::

    CREATE TABLE objects (
        oid  INTEGER PRIMARY KEY,   -- the rowid: physical order == oid order
        cid  INTEGER NOT NULL,
        data BLOB    NOT NULL
    )

The page size and page-cache budget are configurable through SQLite
pragmas and default to the experiment's
:class:`~repro.store.storage.StoreConfig`, so the paper's buffer-size
ablations (``--buffer-pages``) carry over unchanged: a run with a
384-page simulated buffer compares against SQLite with a 384-page cache.

All measurements are wall-clock — SQLite does its own paging, caching
and journaling, which is exactly what the benchmark wants to observe.

Three kernel hooks make the engine first-class under the unified
:class:`~repro.core.session.Session` and the process-parallel harness:

* **batched access** — :meth:`SQLiteBackend.read_many` answers a whole
  BFS frontier (or range-lookup match set) with one ``IN``-clause query
  and :meth:`SQLiteBackend.write_many` is a single ``executemany``;
  ``sql_round_trips`` in :meth:`SQLiteBackend.stats` counts issued
  statements so the saving is measurable;
* **cold-cache control** — :meth:`SQLiteBackend.drop_caches` closes and
  reopens the connection (re-applying the pragmas) for file databases,
  and releases the pager cache in place for ``:memory:`` ones;
* **batched reference traversal** —
  :meth:`SQLiteBackend.traverse_refs_many` answers a whole BFS
  frontier's outgoing references with one ``IN``-clause query and a
  structure-only decode (:func:`~repro.store.serializer.decode_refs`:
  header + reference vector, **no record decode**); constructed with
  ``ref_index=True`` the engine additionally maintains a ``links`` side
  table (src, idx, dst) — at the classic secondary-index price of extra
  (counted) statements on every mutation;
* **concurrent connections** — :meth:`SQLiteBackend.connect_worker`
  opens an independent connection to the same database file (its own
  pager cache, its own locks), which is how each process of a
  :class:`~repro.parallel.runner.ParallelRunner` drives the shared
  engine.  ``journal_mode`` and ``busy_timeout_ms`` are first-class
  constructor knobs: multi-writer runs want ``WAL`` plus a busy budget,
  and every retry a locked database forces is *counted*
  (``busy_retries`` / ``busy_wait_seconds`` in :meth:`stats`), so
  contention is a reported metric instead of invisible latency.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, \
    Sequence, Tuple, TypeVar

from repro.backends.base import Backend
from repro.errors import BackendError, StorageError, UnknownObject
from repro.obs import trace
from repro.store.costs import DEFAULT_PAGE_SIZE
from repro.store.serializer import StoredObject, decode_object, \
    decode_object_lazy, decode_refs, encode_object
from repro.store.storage import stage_bulk_load

__all__ = ["SQLiteBackend"]

#: Page sizes SQLite accepts (powers of two, 512..65536).
_VALID_PAGE_SIZES = tuple(512 << i for i in range(8))

#: IN-clause batch ceiling, below SQLite's default 999-variable limit.
_MAX_BATCH_VARIABLES = 500

#: Error-message fragments that identify a lock collision (SQLITE_BUSY /
#: SQLITE_LOCKED) as opposed to a genuine operational failure.
_BUSY_MARKERS = ("database is locked", "database table is locked",
                 "database is busy")

#: Backoff ladder for busy retries: start at 1 ms, cap at 50 ms.
_BUSY_BACKOFF_START = 0.001
_BUSY_BACKOFF_CAP = 0.05

_T = TypeVar("_T")


class SQLiteBackend(Backend):
    """Serialized objects in an indexed SQLite table."""

    name = "sqlite"
    supports_batched_reads = True
    supports_batched_writes = True
    supports_concurrent_access = True

    #: Default busy budget: matches the 5 s grace ``sqlite3.connect``'s
    #: own busy handler used to provide, but spent in Python so every
    #: collision is counted (see :meth:`_retrying`).
    DEFAULT_BUSY_TIMEOUT_MS = 5000

    def __init__(self, path: str = ":memory:",
                 page_size: int = DEFAULT_PAGE_SIZE,
                 cache_pages: int = 128,
                 synchronous: str = "OFF",
                 journal_mode: str = "MEMORY",
                 busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS,
                 ref_index: bool = False) -> None:
        super().__init__()
        if page_size not in _VALID_PAGE_SIZES:
            raise BackendError(
                f"SQLite page_size must be one of {_VALID_PAGE_SIZES}, "
                f"got {page_size}")
        if cache_pages < 1:
            raise BackendError(f"cache_pages must be >= 1, got {cache_pages}")
        if busy_timeout_ms < 0:
            raise BackendError(
                f"busy_timeout_ms must be >= 0, got {busy_timeout_ms}")
        self.path = path
        self.page_size = page_size
        self.cache_pages = cache_pages
        self.synchronous = synchronous
        self.journal_mode = journal_mode
        self.busy_timeout_ms = busy_timeout_ms
        #: Opt-in secondary link index (``links`` table): answers
        #: :meth:`traverse_refs_many` for a whole BFS frontier with one
        #: ``IN``-clause query, no blob decode — at the usual secondary-
        #: index price of extra statements on every mutation.
        self.ref_index = bool(ref_index)
        self.supports_ref_index = self.ref_index
        self.sql_round_trips = 0
        self.busy_retries = 0
        self.busy_wait_seconds = 0.0
        self._conn = self._connect()

    def _connect(self) -> sqlite3.Connection:
        try:
            conn = sqlite3.connect(self.path)
        except sqlite3.Error as exc:
            raise BackendError(
                f"cannot open SQLite database {self.path!r}: {exc}") from exc
        cur = conn.cursor()
        # page_size must be set before the first table is created.
        cur.execute(f"PRAGMA page_size = {self.page_size}")
        cur.execute(f"PRAGMA cache_size = {self.cache_pages}")
        cur.execute(f"PRAGMA synchronous = {self.synchronous}")
        # The busy budget is spent in Python (see _retry) so collisions
        # are counted; SQLite's own handler is disabled.
        cur.execute("PRAGMA busy_timeout = 0")
        self._retrying(cur.execute,
                       f"PRAGMA journal_mode = {self.journal_mode}")
        self._retrying(
            cur.execute,
            "CREATE TABLE IF NOT EXISTS objects ("
            " oid  INTEGER PRIMARY KEY,"
            " cid  INTEGER NOT NULL,"
            " data BLOB    NOT NULL)")
        self._retrying(
            cur.execute,
            "CREATE INDEX IF NOT EXISTS objects_by_class ON objects (cid)")
        if self.ref_index:
            self._retrying(
                cur.execute,
                "CREATE TABLE IF NOT EXISTS links ("
                " src INTEGER NOT NULL,"
                " idx INTEGER NOT NULL,"
                " dst INTEGER NOT NULL,"
                " PRIMARY KEY (src, idx)) WITHOUT ROWID")
        conn.commit()
        return conn

    def _open_read_connection(self) -> sqlite3.Connection:
        """A dedicated read-only-use connection for pooled fetches.

        Pool connections are handed to one executor thread at a time but
        to *different* threads across acquires, so the sqlite3 default
        thread pin is lifted (``check_same_thread=False``); exclusive
        hand-out by :class:`~repro.backends.pool.ConnectionPool` is what
        keeps that safe.  Unlike the main connection, the busy budget is
        spent SQLite-side here — pool reads never mutate, so there are
        no retries worth counting, and blocking in C releases the GIL.
        Only file databases can be pooled: a second connection to
        ``:memory:`` would see a different (empty) database.
        """
        if self.path == ":memory:":
            raise BackendError(
                "a ':memory:' SQLite database cannot serve pooled read "
                "connections; use a file path for concurrent reads")
        try:
            conn = sqlite3.connect(self.path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise BackendError(
                f"cannot open pooled read connection to "
                f"{self.path!r}: {exc}") from exc
        cur = conn.cursor()
        cur.execute(f"PRAGMA cache_size = {self.cache_pages}")
        cur.execute(f"PRAGMA busy_timeout = {self.busy_timeout_ms}")
        cur.execute("PRAGMA query_only = 1")
        return conn

    # -- busy-retry accounting ------------------------------------------ #

    @staticmethod
    def _is_busy(exc: sqlite3.Error) -> bool:
        message = str(exc).lower()
        return any(marker in message for marker in _BUSY_MARKERS)

    def _retrying(self, fn: Callable[..., _T], *args: object) -> _T:
        """Run *fn*, retrying lock collisions within the busy budget.

        Every collision increments :attr:`busy_retries` and the time
        spent backing off accrues to :attr:`busy_wait_seconds` — the
        contention-accounting layer the multi-process harness reports.
        A budget of zero keeps the single-user behaviour: the first
        collision raises.
        """
        attempt = 0
        deadline = None
        while True:
            try:
                return fn(*args)
            except sqlite3.OperationalError as exc:
                if not self._is_busy(exc):
                    raise
                now = time.perf_counter()
                if deadline is None:
                    deadline = now + self.busy_timeout_ms / 1000.0
                if now >= deadline:
                    raise BackendError(
                        f"SQLite database {self.path!r} still locked after "
                        f"{attempt} retries ({self.busy_timeout_ms} ms "
                        f"budget); raise busy_timeout_ms or reduce writer "
                        f"concurrency") from exc
                delay = min(_BUSY_BACKOFF_START * (2 ** min(attempt, 6)),
                            _BUSY_BACKOFF_CAP, max(deadline - now, 0.0))
                time.sleep(delay)
                self.busy_retries += 1
                self.busy_wait_seconds += time.perf_counter() - now
                if trace.enabled:
                    trace.emit("sqlite.busy_retry",
                               time.perf_counter() - now, attempt=attempt)
                attempt += 1

    def _execute(self, sql: str, params: Sequence[object] = ()
                 ) -> sqlite3.Cursor:
        return self._retrying(self._conn.execute, sql, params)

    def _executemany(self, sql: str, seq: Iterable[Sequence[object]]
                     ) -> sqlite3.Cursor:
        # A retry must re-run the *whole* batch — a generator would
        # arrive at the second attempt exhausted (executemany consumes
        # it before the lock error surfaces).  Batches here are
        # workload-sized (write_many), so buffering is cheap; the one
        # database-sized batch, bulk_load, streams under a held write
        # lock instead of going through this wrapper.
        rows = seq if isinstance(seq, (list, tuple)) else list(seq)
        return self._retrying(self._conn.executemany, sql, rows)

    def _commit(self) -> None:
        self._retrying(self._conn.commit)

    # -- lifecycle ------------------------------------------------------ #

    def bulk_load(self, records: Iterable[StoredObject],
                  order: Optional[Sequence[int]] = None) -> int:
        if self.object_count:
            raise StorageError("bulk_load requires an empty backend")
        sequence = stage_bulk_load(records, order)
        # Take the write lock first (with counted retries), then stream
        # the encode generator straight into executemany: no buffering
        # of the encoded blobs, and no mid-batch SQLITE_BUSY once the
        # lock is held.
        self._retrying(self._conn.execute, "BEGIN IMMEDIATE")
        try:
            self._conn.executemany(
                "INSERT INTO objects (oid, cid, data) VALUES (?, ?, ?)",
                ((r.oid, r.cid, encode_object(r)) for r in sequence))
            if self.ref_index:
                self._conn.executemany(
                    "INSERT INTO links (src, idx, dst) VALUES (?, ?, ?)",
                    ((record.oid, index, target)
                     for record in sequence
                     for index, target in enumerate(record.refs)
                     if target is not None))
        except BaseException:
            self._conn.rollback()
            raise
        self._commit()
        return self._pragma_int("page_count")

    def read_object(self, oid: int, lazy: bool = False) -> StoredObject:
        started = time.perf_counter() if trace.enabled else 0.0
        self.sql_round_trips += 1
        row = self._execute(
            "SELECT data FROM objects WHERE oid = ?", (oid,)).fetchone()
        if row is None:
            raise UnknownObject(oid)
        self.object_accesses += 1
        if trace.enabled:
            trace.emit("sqlite.read_object",
                       time.perf_counter() - started, oid=oid)
        if lazy:
            self.decodes_avoided += 1
            return decode_object_lazy(row[0])
        self.records_decoded += 1
        return decode_object(row[0])

    def read_many(self, oids: Sequence[int],
                  lazy: bool = False) -> Dict[int, StoredObject]:
        """One ``IN``-clause query per batch (chunked below the SQLite
        variable limit) — the whole BFS frontier in one round trip."""
        started = time.perf_counter() if trace.enabled else 0.0
        decode = decode_object_lazy if lazy else decode_object
        unique: List[int] = list(dict.fromkeys(oids))
        records: Dict[int, StoredObject] = {}
        for start in range(0, len(unique), _MAX_BATCH_VARIABLES):
            chunk = unique[start:start + _MAX_BATCH_VARIABLES]
            placeholders = ",".join("?" * len(chunk))
            self.sql_round_trips += 1
            for oid, data in self._execute(
                    f"SELECT oid, data FROM objects "
                    f"WHERE oid IN ({placeholders})", chunk):
                records[oid] = decode(data)
        if lazy:
            self.decodes_avoided += len(records)
        else:
            self.records_decoded += len(records)
        if len(records) != len(unique):
            missing = next(oid for oid in unique if oid not in records)
            raise UnknownObject(missing)
        self.object_accesses += len(unique)
        if trace.enabled:
            trace.emit("sqlite.read_many",
                       time.perf_counter() - started, oids=len(unique))
        return records

    def write_object(self, record: StoredObject) -> None:
        self.sql_round_trips += 1
        cur = self._execute(
            "UPDATE objects SET cid = ?, data = ? WHERE oid = ?",
            (record.cid, encode_object(record), record.oid))
        if cur.rowcount == 0:
            raise UnknownObject(record.oid)
        self._reindex_links([record])
        self.object_accesses += 1

    def write_many(self, records: Sequence[StoredObject]) -> None:
        """A single ``executemany`` round trip for the whole batch."""
        if not records:
            return
        started = time.perf_counter() if trace.enabled else 0.0
        self.sql_round_trips += 1
        cur = self._executemany(
            "UPDATE objects SET cid = ?, data = ? WHERE oid = ?",
            ((r.cid, encode_object(r), r.oid) for r in records))
        if cur.rowcount != len(records):
            missing = next((r.oid for r in records if r.oid not in self),
                           None)
            if missing is not None:
                # The rows before the miss were still updated; reindex
                # them so the link table never diverges from the blobs.
                self._reindex_links([r for r in records
                                     if r.oid in self])
                raise UnknownObject(missing)
        self._reindex_links(records)
        self.object_accesses += len(records)
        if trace.enabled:
            trace.emit("sqlite.write_many",
                       time.perf_counter() - started, records=len(records))

    def insert_object(self, record: StoredObject) -> None:
        self.sql_round_trips += 1
        try:
            self._execute(
                "INSERT INTO objects (oid, cid, data) VALUES (?, ?, ?)",
                (record.oid, record.cid, encode_object(record)))
        except sqlite3.IntegrityError:
            raise StorageError(f"oid {record.oid} already exists") from None
        if self.ref_index:
            rows = [(record.oid, index, target)
                    for index, target in enumerate(record.refs)
                    if target is not None]
            if rows:
                self.sql_round_trips += 1
                self._executemany(
                    "INSERT INTO links (src, idx, dst) VALUES (?, ?, ?)",
                    rows)
        self.object_accesses += 1

    def delete_object(self, oid: int) -> None:
        self.sql_round_trips += 1
        cur = self._execute("DELETE FROM objects WHERE oid = ?", (oid,))
        if cur.rowcount == 0:
            raise UnknownObject(oid)
        if self.ref_index:
            self.sql_round_trips += 1
            self._execute("DELETE FROM links WHERE src = ?", (oid,))
        self.object_accesses += 1

    def _reindex_links(self, records: Sequence[StoredObject]) -> None:
        """Replace the link rows of rewritten records (no-op unless the
        engine was built with ``ref_index=True``)."""
        if not self.ref_index or not records:
            return
        self.sql_round_trips += 1
        self._executemany("DELETE FROM links WHERE src = ?",
                          [(record.oid,) for record in records])
        rows = [(record.oid, index, target)
                for record in records
                for index, target in enumerate(record.refs)
                if target is not None]
        if rows:
            self.sql_round_trips += 1
            self._executemany(
                "INSERT INTO links (src, idx, dst) VALUES (?, ?, ?)", rows)

    def traverse_refs_many(self, oids: Sequence[int]
                           ) -> Dict[int, Tuple[int, ...]]:
        """A whole frontier's outgoing references, no record decode.

        One ``IN``-clause blob query per chunk, folded through
        :func:`~repro.store.serializer.decode_refs` — header plus one
        bulk unpack of the reference vector, no :class:`StoredObject`,
        no back-ref/payload decode.  A missing oid raises exactly like
        the loop fallback.

        This deliberately reads the blob *instead of* the ``links``
        index: profiling showed the one-row-per-edge ``LEFT JOIN``
        spends ~3x the wall time of this path in the driver's per-row
        overhead, while ``decode_refs`` touches only the first
        ``22 + 8*nref`` bytes of each blob.  The narrow ``links`` rows
        remain a maintained physical index (and stay pinned by the
        protocol tests) for engines and experiments that cannot afford
        blob I/O at all.
        """
        started = time.perf_counter() if trace.enabled else 0.0
        unique: List[int] = list(dict.fromkeys(oids))
        refs: Dict[int, Tuple[int, ...]] = {}
        for start in range(0, len(unique), _MAX_BATCH_VARIABLES):
            chunk = unique[start:start + _MAX_BATCH_VARIABLES]
            placeholders = ",".join("?" * len(chunk))
            self.sql_round_trips += 1
            for oid, data in self._execute(
                    f"SELECT oid, data FROM objects "
                    f"WHERE oid IN ({placeholders})", chunk):
                refs[oid] = decode_refs(data)
        if len(refs) != len(unique):
            missing = next(oid for oid in unique if oid not in refs)
            raise UnknownObject(missing)
        self.object_accesses += len(unique)
        # The frontier was answered from structure alone — each oid
        # here is one full record decode the loop path would have paid.
        self.decodes_avoided += len(unique)
        if trace.enabled:
            trace.emit("sqlite.traverse_refs_many",
                       time.perf_counter() - started, oids=len(unique))
        return refs

    def drop_caches(self) -> bool:
        """Cold restart: drop the pager cache (and any OS-visible state).

        File databases get the honest treatment — commit, close, reopen,
        re-apply the pragmas.  ``:memory:`` databases would lose their
        data on close, so the pager cache is released in place
        (``PRAGMA shrink_memory``) and the cache budget re-asserted.
        """
        self._commit()
        if self.path == ":memory:":
            self._execute("PRAGMA shrink_memory")
            self._execute(f"PRAGMA cache_size = {self.cache_pages}")
            return True
        self._conn.close()
        self._conn = self._connect()
        return True

    def flush(self) -> int:
        """Commit the open transaction (write-back point for mutations)."""
        self._commit()
        return 0

    def connect_worker(self) -> "SQLiteBackend":
        """An independent connection to the same database file.

        The new backend shares nothing Python-side with this one — its
        own ``sqlite3`` connection, pager cache and statistics — so a
        worker process (or a contention test in-process) sees exactly
        the isolation and locking a second OS process would.  Only file
        databases can be shared; ``:memory:`` databases are private to
        their connection by construction.
        """
        if self.path == ":memory:":
            raise BackendError(
                "a ':memory:' SQLite database cannot be shared between "
                "connections; use a file path for concurrent runs")
        # Publish any buffered writes so the sibling sees current data.
        self._commit()
        return SQLiteBackend(path=self.path,
                             page_size=self.page_size,
                             cache_pages=self.cache_pages,
                             synchronous=self.synchronous,
                             journal_mode=self.journal_mode,
                             busy_timeout_ms=self.busy_timeout_ms,
                             ref_index=self.ref_index)

    def stats(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "page_size": self._pragma_int("page_size"),
            "cache_pages": self.cache_pages,
            "journal_mode": self._pragma_str("journal_mode"),
            "busy_timeout_ms": self.busy_timeout_ms,
            "ref_index": self.ref_index,
            "pages": self._pragma_int("page_count"),
            "freelist_pages": self._pragma_int("freelist_count"),
            "objects": self.object_count,
            "object_accesses": self.object_accesses,
            "records_decoded": self.records_decoded,
            "decodes_avoided": self.decodes_avoided,
            "sql_round_trips": self.sql_round_trips,
            "busy_retries": self.busy_retries,
            "busy_wait_seconds": self.busy_wait_seconds,
            "sqlite_version": sqlite3.sqlite_version,
        }

    def reset_stats(self) -> None:
        super().reset_stats()
        self.sql_round_trips = 0
        self.busy_retries = 0
        self.busy_wait_seconds = 0.0

    def close(self) -> None:
        self._commit()
        self._conn.close()

    # -- accounting surface --------------------------------------------- #

    @property
    def object_count(self) -> int:
        (count,) = self._execute(
            "SELECT COUNT(*) FROM objects").fetchone()
        return count

    def iter_oids(self) -> Iterator[int]:
        for (oid,) in self._execute("SELECT oid FROM objects"):
            yield oid

    def current_order(self) -> List[int]:
        """rowid order — for an INTEGER PRIMARY KEY this is oid order."""
        return [oid for (oid,) in self._execute(
            "SELECT oid FROM objects ORDER BY rowid")]

    def oids_of_class(self, cid: int) -> Tuple[int, ...]:
        """Class-extent lookup through the secondary index."""
        return tuple(oid for (oid,) in self._execute(
            "SELECT oid FROM objects WHERE cid = ? ORDER BY oid", (cid,)))

    def _pragma_int(self, name: str) -> int:
        (value,) = self._execute(f"PRAGMA {name}").fetchone()
        return int(value)

    def _pragma_str(self, name: str) -> str:
        (value,) = self._execute(f"PRAGMA {name}").fetchone()
        return str(value)

    def __contains__(self, oid: int) -> bool:
        return self._execute(
            "SELECT 1 FROM objects WHERE oid = ?", (oid,)).fetchone() \
            is not None

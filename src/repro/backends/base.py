"""The storage-backend abstraction: one workload, many engines.

OCB's defining claim is *genericity* — the same schema, generator and
workload should benchmark **any** object store.  :class:`Backend` is the
contract that makes that concrete: anything that can

* :meth:`~Backend.bulk_load` a generated database,
* :meth:`~Backend.read_object` / :meth:`~Backend.write_object` /
  :meth:`~Backend.insert_object` / :meth:`~Backend.delete_object`
  individual records,
* :meth:`~Backend.read_many` / :meth:`~Backend.write_many` record
  batches (loop fallbacks here; engines with a native set-oriented
  access path override them — SQLite answers a whole BFS frontier with
  one ``IN``-clause query),
* :meth:`~Backend.traverse_refs` an object's outgoing references,
* :meth:`~Backend.drop_caches` for honest cold runs, and
* report :meth:`~Backend.stats`

can run the full cold/warm protocol unchanged.  The execution kernel
(:class:`~repro.core.session.Session`) only ever talks to this surface,
so a new engine (LMDB, Redis, a sharded store) is a ~100-line adapter
away — and every workload (OCB transactions, the generic operation set,
multi-user interleaving) runs on it immediately.

Two kinds of metrics coexist:

* **simulated costs** — backends built on the cost-model substrate (the
  :class:`~repro.backends.simulated.SimulatedBackend`) charge page reads,
  write backs and swizzling on a :class:`~repro.store.costs.SimClock`;
* **wall-clock latency** — every backend, real or simulated, is timed by
  the runner, so cross-backend comparisons quote P50/P95/P99 percentiles
  of real elapsed time.

Backends that do not simulate anything simply leave the simulated
counters at zero; :meth:`Backend.snapshot` returns the same
:class:`~repro.store.storage.StoreSnapshot` shape either way, which keeps
the metrics pipeline identical for all engines.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import BackendError
from repro.store.buffer import BufferStats
from repro.store.costs import CostModel, SimClock
from repro.store.disk import DiskStats
from repro.store.serializer import StoredObject
from repro.store.storage import StoreSnapshot
from repro.store.swizzle import SwizzleStats

__all__ = ["Backend", "ReadHandle"]


class ReadHandle:
    """Already-completed answer of a submitted batched read.

    The synchronous half of the optional submit/collect protocol (see
    :meth:`Backend.submit_read_many`): engines without an asynchronous
    read path execute the batch *at submit time* and wrap the finished
    answer, so callers written against the pipelined protocol run
    unchanged — and bit-identically — on every engine.
    """

    __slots__ = ("_value",)

    def __init__(self, value: object) -> None:
        self._value = value

    def result(self) -> object:
        return self._value


class Backend(abc.ABC):
    """Abstract storage engine driven by the OCB workload.

    Subclasses implement the lifecycle methods; the base class provides
    the shared accounting surface the workload runner expects
    (``snapshot``, ``clock``, ``cost_model``, ``object_accesses``) with
    all simulated counters at zero.  Cost-model backends override
    :meth:`snapshot` to expose their real simulated counters.
    """

    #: Registry name (set on subclasses; instances may override).
    name: str = "abstract"

    #: Whether the engine supports physical reorganization (clustering
    #: policies).  Only the simulated store does today.
    supports_clustering: bool = False

    #: Whether :meth:`read_many` is answered by a native set-oriented
    #: query (one round trip per batch) rather than the loop fallback.
    #: The execution kernel only issues batched frontier fetches when
    #: this is set, so cost-model engines keep their per-object
    #: accounting bit-identical.
    supports_batched_reads: bool = False

    #: Whether :meth:`write_many` is a single native round trip.
    supports_batched_writes: bool = False

    #: Whether independent connections (one per OS process) can share the
    #: engine's durable storage.  Engines that set this implement
    #: :meth:`connect_worker`; the process-parallel subsystem
    #: (:mod:`repro.parallel`) runs every worker against its own
    #: connection when the tag is set and falls back to per-worker
    #: replicas otherwise.
    supports_concurrent_access: bool = False

    def __init__(self) -> None:
        self.object_accesses = 0
        #: Records fully decoded from their byte form on a read path.
        self.records_decoded = 0
        #: Records (or frontier answers) served *without* a full decode —
        #: lazy header-only reads and link-index traversal answers.
        self.decodes_avoided = 0
        self.clock = SimClock()
        self.cost_model = CostModel()

    # ------------------------------------------------------------------ #
    # Lifecycle (the protocol proper)
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def bulk_load(self, records: Iterable[StoredObject],
                  order: Optional[Sequence[int]] = None) -> int:
        """Load a generated database, optionally in a placement *order*.

        Returns the number of storage units materialised (pages for paged
        engines, rows otherwise).  The backend must be empty.
        """

    @abc.abstractmethod
    def read_object(self, oid: int, lazy: bool = False) -> StoredObject:
        """Fetch one object; raise :class:`~repro.errors.UnknownObject`
        if *oid* is not stored.

        With ``lazy=True`` an engine that stores encoded records may
        return a zero-copy
        :class:`~repro.store.serializer.LazyStoredObject` (header parsed,
        refs/back-refs deferred) and count it under
        :attr:`decodes_avoided`.  Engines without a byte-level
        representation ignore the flag — the record they hand back is
        already the cheapest form they have.
        """

    @abc.abstractmethod
    def write_object(self, record: StoredObject) -> None:
        """Update an existing object in place."""

    @abc.abstractmethod
    def insert_object(self, record: StoredObject) -> None:
        """Persist a brand-new object."""

    @abc.abstractmethod
    def delete_object(self, oid: int) -> None:
        """Remove an object."""

    # -- batched access (the kernel's hot path) ------------------------- #

    def read_many(self, oids: Sequence[int],
                  lazy: bool = False) -> Dict[int, StoredObject]:
        """Fetch a batch of objects, keyed by oid.

        Duplicate oids are fetched once.  Raises
        :class:`~repro.errors.UnknownObject` if any oid is not stored.
        The fallback loops over :meth:`read_object` (in first-occurrence
        order, so cost accounting matches a hand-written loop); engines
        with a set-oriented access path override this with one query per
        batch and set :attr:`supports_batched_reads`.  ``lazy`` has the
        same meaning as on :meth:`read_object`.
        """
        records: Dict[int, StoredObject] = {}
        for oid in oids:
            if oid not in records:
                records[oid] = self.read_object(oid, lazy=lazy)
        return records

    def write_many(self, records: Sequence[StoredObject]) -> None:
        """Update a batch of existing objects.

        The fallback loops over :meth:`write_object` in order; engines
        with a native multi-row write override it and set
        :attr:`supports_batched_writes`.
        """
        for record in records:
            self.write_object(record)

    def traverse_refs(self, oid: int) -> Tuple[int, ...]:
        """Non-NIL forward references of *oid* (one graph hop).

        The default implementation reads the object and filters its
        reference slots; engines with native link storage may override.
        """
        return self.read_object(oid).non_null_refs()

    #: Whether :meth:`traverse_refs_many` is answered by a native
    #: link-structure query (no record decode) rather than the loop
    #: fallback.  SQLite sets it when constructed with ``ref_index=True``.
    supports_ref_index: bool = False

    #: Whether :meth:`submit_read_many` / :meth:`submit_traverse_refs_many`
    #: genuinely overlap I/O with the caller (pooled connections, reads
    #: in flight while the caller keeps working).  When ``False`` the
    #: submit hooks below execute synchronously at submit time — correct
    #: on every engine, concurrent on none.
    supports_async_reads: bool = False

    def submit_read_many(self, oids: Sequence[int],
                         lazy: bool = False) -> "ReadHandle":
        """Schedule a batched read; ``result()`` yields the batch.

        The pipelined half of the batched-read protocol: an engine with
        pooled connections overrides this to put the batch in flight and
        return a pending handle, so the caller (the session's pipelined
        BFS) can keep processing the previous frontier while this one's
        I/O runs.  The fallback executes :meth:`read_many` immediately —
        same answer, no overlap — which keeps the protocol safe to use
        unconditionally.
        """
        return ReadHandle(self.read_many(oids, lazy=lazy))

    def submit_traverse_refs_many(self, oids: Sequence[int]
                                  ) -> "ReadHandle":
        """Schedule a batched structure-only traversal (see above)."""
        return ReadHandle(self.traverse_refs_many(oids))

    def traverse_refs_many(self, oids: Sequence[int]
                           ) -> Dict[int, Tuple[int, ...]]:
        """Non-NIL forward references of a whole batch, keyed by oid.

        The structure-only answer to "where does this BFS frontier go
        next": engines with a link index resolve the entire batch in one
        set-oriented query without decoding a single record blob (and
        set :attr:`supports_ref_index`); the fallback loops over
        :meth:`traverse_refs` in first-occurrence order.  Duplicate oids
        are answered once; any missing oid raises
        :class:`~repro.errors.UnknownObject`, exactly like the loop.
        """
        refs: Dict[int, Tuple[int, ...]] = {}
        for oid in oids:
            if oid not in refs:
                refs[oid] = self.traverse_refs(oid)
        return refs

    @abc.abstractmethod
    def stats(self) -> Dict[str, object]:
        """Engine-specific statistics (configuration, sizes, counters)."""

    def drop_caches(self) -> bool:
        """Evict every cache the engine controls (a "cold" restart).

        Returns ``True`` when cached state was actually dropped and
        ``False`` when the engine has no cache to drop (the memory
        backend *is* its own cache), so harnesses can report honestly
        whether a "cold" phase really started cold.
        """
        return False

    def flush(self) -> int:
        """Persist buffered writes; returns the units written (if known).

        The default is a no-op for engines that write through.
        """
        return 0

    def connect_worker(self) -> "Backend":
        """Open an independent connection to the same stored data.

        The multi-process coordinator calls this once as a *probe*
        before spawning workers; the workers themselves (being separate
        processes that cannot receive a live engine) reconnect by
        resolving the backend name with the same options.  The full
        ``concurrent`` contract is therefore twofold: this method must
        return a second live connection, **and** the constructor options
        must fully describe the shared storage so a reconnect-by-name
        attaches to it.  In-process callers (contention tests, future
        threaded harnesses) use this method directly for a second
        connection with its own caches and locks.

        The safe default refuses: an engine whose state lives in this
        process's memory (the simulated store, the dict backend,
        ``:memory:`` SQLite) cannot hand anyone else a view of it.
        Engines that can share storage set
        :attr:`supports_concurrent_access` and override this.
        """
        raise BackendError(
            f"backend {self.name!r} does not support concurrent "
            f"connections to shared storage; an engine that shares "
            f"durable storage must override connect_worker (and only "
            f"such engines may register the 'concurrent' capability)")

    def close(self) -> None:
        """Release any engine resources (connections, files)."""

    # ------------------------------------------------------------------ #
    # Accounting surface shared with the workload runner
    # ------------------------------------------------------------------ #

    @property
    @abc.abstractmethod
    def object_count(self) -> int:
        """Number of live objects."""

    def snapshot(self) -> StoreSnapshot:
        """Metrics snapshot; simulated counters are zero for real engines.

        ``sim_time`` is pinned to zero regardless of the internal clock:
        the runner charges think-time latency on ``clock`` for engines
        that simulate costs, but a wall-clock-only engine must never
        report it as simulated response time.
        """
        return StoreSnapshot(disk=DiskStats(),
                             buffer=BufferStats(),
                             swizzle=SwizzleStats(),
                             object_accesses=self.object_accesses,
                             sim_time=0.0)

    def reset_stats(self) -> None:
        """Zero the accounting counters (stored data is untouched)."""
        self.object_accesses = 0
        self.records_decoded = 0
        self.decodes_avoided = 0

    def current_order(self) -> List[int]:
        """Object ids in physical (or canonical) storage order."""
        return sorted(self.iter_oids())

    @abc.abstractmethod
    def iter_oids(self) -> Iterable[int]:
        """Iterate over stored object ids (unspecified order)."""

    # ------------------------------------------------------------------ #
    # Conveniences
    # ------------------------------------------------------------------ #

    def __contains__(self, oid: int) -> bool:
        return any(stored == oid for stored in self.iter_oids())

    def __len__(self) -> int:
        return self.object_count

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""Pipelined SQLite backend — one file, K read statements in flight.

The sharded engine overlaps reads *across* database files; this engine
overlaps them *within* one.  Any :meth:`read_many` /
:meth:`traverse_refs_many` batch is split into up to ``pool_size``
sub-batches, each executed on its own pooled read connection
(:class:`~repro.backends.pool.ConnectionPool`) by a small thread pool —
SQLite's C calls release the GIL, so one sub-batch's blob decode
overlaps another's page I/O even on a single file.

The engine also implements the submit/collect half of the protocol
(:meth:`submit_read_many` / :meth:`submit_traverse_refs_many` return a
:class:`~repro.backends.pool.DeferredHandle` with the sub-batches
already in flight), which is what the session kernel's pipelined BFS
builds on: the *next* frontier's read is submitted while the current
frontier's references are still being processed.

Accounting honesty mirrors the sharded fan-out: fetch tasks touch no
counters; the collect side folds round trips, decode counts and the
missing-oid check on the calling thread, so ``stats()`` stays
single-threaded and comparable with the sequential engine.  Round-trip
counts *do* differ from the sequential engine's — splitting a frontier
into K sub-batches issues K statements where one sufficed; that is the
price of overlap and it is reported, not hidden.

``:memory:`` databases cannot be pooled (a second connection sees a
different, empty database), so the engine degrades to the plain
sequential :class:`~repro.backends.sqlite.SQLiteBackend` behaviour with
``max_inflight_reads`` honestly pinned at its sequential value.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.base import ReadHandle
from repro.backends.pool import ConnectionPool, DeferredHandle, InflightGauge
from repro.backends.sqlite import SQLiteBackend, _MAX_BATCH_VARIABLES
from repro.errors import BackendError, UnknownObject
from repro.obs import trace
from repro.store.costs import DEFAULT_PAGE_SIZE
from repro.store.serializer import StoredObject, decode_object, \
    decode_object_lazy, decode_refs

__all__ = ["PipelinedSQLiteBackend", "DEFAULT_POOL_SIZE"]

#: Default read-connection pool size (sub-batch fan-out width).
DEFAULT_POOL_SIZE = 2


class PipelinedSQLiteBackend(SQLiteBackend):
    """Single-file SQLite with pooled, concurrently executed sub-batches."""

    name = "pipelined-sqlite"

    def __init__(self, path: str = ":memory:",
                 page_size: int = DEFAULT_PAGE_SIZE,
                 cache_pages: int = 128,
                 synchronous: str = "OFF",
                 journal_mode: str = "MEMORY",
                 busy_timeout_ms: int = SQLiteBackend.DEFAULT_BUSY_TIMEOUT_MS,
                 ref_index: bool = False,
                 pool_size: int = DEFAULT_POOL_SIZE) -> None:
        if pool_size < 1:
            raise BackendError(f"pool_size must be >= 1, got {pool_size}")
        super().__init__(path=path, page_size=page_size,
                         cache_pages=cache_pages, synchronous=synchronous,
                         journal_mode=journal_mode,
                         busy_timeout_ms=busy_timeout_ms,
                         ref_index=ref_index)
        self.pool_size = int(pool_size)
        #: Effective only for file databases with a pool worth the name:
        #: ``:memory:`` cannot serve a second connection and a pool of 1
        #: has nothing to overlap — both keep the sequential path (and
        #: its honest counters: peaks stay at the sequential value).
        self._fanout_enabled = (self.path != ":memory:"
                                and self.pool_size > 1)
        self.supports_async_reads = self._fanout_enabled
        self._pool: Optional[ConnectionPool] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._inflight = InflightGauge()
        #: Peak sub-batches submitted as one concurrent group (1 when
        #: every batch was too small to split or fan-out is disabled).
        self.concurrent_batches = 0

    # -- fan-out plumbing ----------------------------------------------- #

    def _read_pool(self) -> ConnectionPool:
        if self._pool is None:
            self._pool = ConnectionPool(self._open_read_connection,
                                        size=self.pool_size,
                                        name=self.path)
        return self._pool

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.pool_size,
                thread_name_prefix="ocb-pipeline-read")
        return self._executor

    def _sub_batches(self, unique: Sequence[int]) -> List[List[int]]:
        """Split a deduplicated batch into up to ``pool_size`` slices.

        Slices are contiguous runs of the first-occurrence order, sized
        evenly, each further bounded by the SQL variable limit; a batch
        smaller than two oids per slice just uses fewer slices.
        """
        width = min(self.pool_size, len(unique))
        size = -(-len(unique) // width)  # ceil division
        size = min(max(size, 1), _MAX_BATCH_VARIABLES)
        return [list(unique[start:start + size])
                for start in range(0, len(unique), size)]

    def _fetch_chunk(self, chunk: Sequence[int],
                     lazy: bool) -> Tuple[Dict[int, StoredObject], int]:
        """One sub-batch, on a pooled connection (executor thread).

        Counters are untouched here — the collect side folds the
        returned round-trip count on the coordinator thread.
        """
        started = time.perf_counter() if trace.enabled else 0.0
        decode = decode_object_lazy if lazy else decode_object
        records: Dict[int, StoredObject] = {}
        round_trips = 0
        with self._read_pool().acquire() as conn:
            for start in range(0, len(chunk), _MAX_BATCH_VARIABLES):
                piece = chunk[start:start + _MAX_BATCH_VARIABLES]
                placeholders = ",".join("?" * len(piece))
                round_trips += 1
                for oid, data in conn.execute(
                        f"SELECT oid, data FROM objects "
                        f"WHERE oid IN ({placeholders})", piece):
                    records[oid] = decode(data)
        if trace.enabled:
            trace.emit("pool.read", time.perf_counter() - started,
                       pool=self.path, oids=len(chunk))
        return records, round_trips

    def _fetch_chunk_refs(self, chunk: Sequence[int]
                          ) -> Tuple[Dict[int, Tuple[int, ...]], int]:
        """Structure-only sub-batch (see :meth:`_fetch_chunk`)."""
        started = time.perf_counter() if trace.enabled else 0.0
        refs: Dict[int, Tuple[int, ...]] = {}
        round_trips = 0
        with self._read_pool().acquire() as conn:
            for start in range(0, len(chunk), _MAX_BATCH_VARIABLES):
                piece = chunk[start:start + _MAX_BATCH_VARIABLES]
                placeholders = ",".join("?" * len(piece))
                round_trips += 1
                for oid, data in conn.execute(
                        f"SELECT oid, data FROM objects "
                        f"WHERE oid IN ({placeholders})", piece):
                    refs[oid] = decode_refs(data)
        if trace.enabled:
            trace.emit("pool.read", time.perf_counter() - started,
                       pool=self.path, oids=len(chunk),
                       structure_only=True)
        return refs, round_trips

    # -- submit/collect protocol ---------------------------------------- #

    def submit_read_many(self, oids: Sequence[int],
                         lazy: bool = False) -> "ReadHandle | DeferredHandle":
        """Put a batch's sub-batches in flight; collect folds counters.

        The main connection's buffered writes are committed first so the
        pooled readers (separate connections) see current data — the
        sequential path reads its own uncommitted state, and equivalence
        across modes depends on publishing it.
        """
        if not self._fanout_enabled:
            return ReadHandle(self.read_many(oids, lazy=lazy))
        unique: List[int] = list(dict.fromkeys(oids))
        if len(unique) < 2:
            return ReadHandle(self.read_many(oids, lazy=lazy))
        started = time.perf_counter() if trace.enabled else 0.0
        self._commit()  # Publish buffered writes to the pooled readers.
        chunks = self._sub_batches(unique)
        executor = self._ensure_executor()
        self._inflight.enter(len(chunks))
        self.concurrent_batches = max(self.concurrent_batches, len(chunks))
        futures = [executor.submit(self._fetch_chunk, chunk, lazy)
                   for chunk in chunks]

        def collect() -> Dict[int, StoredObject]:
            fetched: Dict[int, StoredObject] = {}
            outstanding = len(futures)
            try:
                for future in futures:
                    records, round_trips = future.result()
                    self._inflight.exit()
                    outstanding -= 1
                    self.sql_round_trips += round_trips
                    fetched.update(records)
            finally:
                if outstanding:
                    self._inflight.exit(outstanding)
            if lazy:
                self.decodes_avoided += len(fetched)
            else:
                self.records_decoded += len(fetched)
            if len(fetched) != len(unique):
                missing = next(oid for oid in unique if oid not in fetched)
                raise UnknownObject(missing)
            self.object_accesses += len(unique)
            if trace.enabled:
                trace.emit("pipelined.read_many",
                           time.perf_counter() - started,
                           oids=len(unique), sub_batches=len(chunks))
            return {oid: fetched[oid] for oid in unique}

        return DeferredHandle(collect)

    def submit_traverse_refs_many(self, oids: Sequence[int]
                                  ) -> "ReadHandle | DeferredHandle":
        """Structure-only sub-batches in flight at once."""
        if not self._fanout_enabled:
            return ReadHandle(self.traverse_refs_many(oids))
        unique: List[int] = list(dict.fromkeys(oids))
        if len(unique) < 2:
            return ReadHandle(self.traverse_refs_many(oids))
        started = time.perf_counter() if trace.enabled else 0.0
        self._commit()
        chunks = self._sub_batches(unique)
        executor = self._ensure_executor()
        self._inflight.enter(len(chunks))
        self.concurrent_batches = max(self.concurrent_batches, len(chunks))
        futures = [executor.submit(self._fetch_chunk_refs, chunk)
                   for chunk in chunks]

        def collect() -> Dict[int, Tuple[int, ...]]:
            refs: Dict[int, Tuple[int, ...]] = {}
            outstanding = len(futures)
            try:
                for future in futures:
                    answered, round_trips = future.result()
                    self._inflight.exit()
                    outstanding -= 1
                    self.sql_round_trips += round_trips
                    refs.update(answered)
            finally:
                if outstanding:
                    self._inflight.exit(outstanding)
            if len(refs) != len(unique):
                missing = next(oid for oid in unique if oid not in refs)
                raise UnknownObject(missing)
            self.object_accesses += len(unique)
            self.decodes_avoided += len(unique)
            if trace.enabled:
                trace.emit("pipelined.traverse_refs_many",
                           time.perf_counter() - started,
                           oids=len(unique), sub_batches=len(chunks))
            return {oid: refs[oid] for oid in unique}

        return DeferredHandle(collect)

    # -- batched reads route through the pool when it helps ------------- #

    def read_many(self, oids: Sequence[int],
                  lazy: bool = False) -> Dict[int, StoredObject]:
        if self._fanout_enabled and len(dict.fromkeys(oids)) >= 2:
            return self.submit_read_many(oids, lazy=lazy).result()
        return super().read_many(oids, lazy=lazy)

    def traverse_refs_many(self, oids: Sequence[int]
                           ) -> Dict[int, Tuple[int, ...]]:
        if self._fanout_enabled and len(dict.fromkeys(oids)) >= 2:
            return self.submit_traverse_refs_many(oids).result()
        return super().traverse_refs_many(oids)

    # -- lifecycle / accounting ----------------------------------------- #

    def drop_caches(self) -> bool:
        # Pooled read connections hold their own pager caches — recycle
        # them so cold means cold on every connection.
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        return super().drop_caches()

    def connect_worker(self) -> "PipelinedSQLiteBackend":
        if self.path == ":memory:":
            raise BackendError(
                "a ':memory:' SQLite database cannot be shared between "
                "connections; use a file path for concurrent runs")
        self._commit()
        return PipelinedSQLiteBackend(path=self.path,
                                      page_size=self.page_size,
                                      cache_pages=self.cache_pages,
                                      synchronous=self.synchronous,
                                      journal_mode=self.journal_mode,
                                      busy_timeout_ms=self.busy_timeout_ms,
                                      ref_index=self.ref_index,
                                      pool_size=self.pool_size)

    def stats(self) -> Dict[str, object]:
        report = super().stats()
        pool_stats = self._pool.stats() if self._pool is not None else None
        report.update({
            "pool_size": self.pool_size,
            "pipelined": self._fanout_enabled,
            "concurrent_batches": self.concurrent_batches,
            "max_inflight_reads": self._inflight.peak,
            "pool_wait_seconds": (pool_stats["pool_wait_seconds"]
                                  if pool_stats else 0.0),
            "pool_connections_opened": (pool_stats["connections_opened"]
                                        if pool_stats else 0),
        })
        return report

    def reset_stats(self) -> None:
        super().reset_stats()
        self.concurrent_batches = 0
        self._inflight.reset()
        if self._pool is not None:
            self._pool.reset_stats()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        super().close()

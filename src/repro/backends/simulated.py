"""The simulated (Texas-like) backend — the reproduction's reference engine.

A thin adapter around :class:`~repro.store.storage.ObjectStore` that
forwards every call unchanged, so driving the workload through this
backend produces **bit-identical** simulated metrics to driving the
store directly: same page faults, same buffer hits, same swizzling, same
simulated clock.  It is the only backend with ``supports_clustering``,
because physical reorganization is a property of the paged segment.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.backends.base import Backend
from repro.store.costs import CostModel, SimClock
from repro.store.serializer import StoredObject
from repro.store.storage import (
    ObjectStore,
    ReorganizationStats,
    StoreConfig,
    StoreSnapshot,
)

__all__ = ["SimulatedBackend"]


class SimulatedBackend(Backend):
    """Cost-model object store behind the generic backend protocol."""

    name = "simulated"
    supports_clustering = True

    def __init__(self, store: Optional[ObjectStore] = None,
                 store_config: Optional[StoreConfig] = None) -> None:
        # Deliberately skip Backend.__init__: the store owns the clock,
        # the cost model and every counter; keeping a parallel set here
        # would desynchronise the accounting.
        if store is None:
            store = (store_config or StoreConfig()).build()
        self.store = store

    # -- shared accounting surface (all delegated) --------------------- #

    @property
    def clock(self) -> SimClock:  # type: ignore[override]
        return self.store.clock

    @property
    def cost_model(self) -> CostModel:  # type: ignore[override]
        return self.store.cost_model

    @property
    def object_accesses(self) -> int:  # type: ignore[override]
        return self.store.object_accesses

    @property
    def records_decoded(self) -> int:  # type: ignore[override]
        return self.store.records_decoded

    @property
    def decodes_avoided(self) -> int:  # type: ignore[override]
        return self.store.decodes_avoided

    @property
    def page_size(self) -> int:
        return self.store.page_size

    @property
    def object_count(self) -> int:
        return self.store.object_count

    @property
    def page_count(self) -> int:
        return self.store.page_count

    def snapshot(self) -> StoreSnapshot:
        return self.store.snapshot()

    def reset_stats(self) -> None:
        self.store.reset_stats()

    def drop_caches(self) -> bool:
        """Cold restart: empty the buffer pool and decoded-object cache."""
        self.store.drop_caches()
        return True

    def flush(self) -> int:
        """Write back dirty pages; returns the pages written."""
        return self.store.flush()

    # -- lifecycle ------------------------------------------------------ #

    def bulk_load(self, records: Iterable[StoredObject],
                  order: Optional[Sequence[int]] = None) -> int:
        return self.store.bulk_load(records, order=order)

    def read_object(self, oid: int, lazy: bool = False) -> StoredObject:
        return self.store.read_object(oid, lazy=lazy)

    def write_object(self, record: StoredObject) -> None:
        self.store.write_object(record)

    def insert_object(self, record: StoredObject) -> None:
        self.store.insert_object(record)

    def delete_object(self, oid: int) -> None:
        self.store.delete_object(oid)

    def stats(self) -> Dict[str, object]:
        snap = self.store.snapshot()
        return {
            "page_size": self.store.page_size,
            "pages": self.store.page_count,
            "objects": self.store.object_count,
            "io_reads": snap.io_reads,
            "io_writes": snap.io_writes,
            "buffer_hit_ratio": snap.buffer.hit_ratio,
            "records_decoded": self.store.records_decoded,
            "decodes_avoided": self.store.decodes_avoided,
            "sim_time": snap.sim_time,
        }

    def close(self) -> None:
        self.store.flush()

    # -- clustering & physical layout ----------------------------------- #

    def current_order(self) -> List[int]:
        return self.store.current_order()

    def reorganize(self, new_order: Sequence[int],
                   io_mode: str = "touched",
                   aligned_groups: Optional[Sequence[Sequence[int]]] = None
                   ) -> ReorganizationStats:
        """Physically re-cluster the segment (clustering phase 5)."""
        return self.store.reorganize(new_order, io_mode=io_mode,
                                     aligned_groups=aligned_groups)

    def iter_oids(self) -> Iterator[int]:
        return self.store.iter_oids()

    def __contains__(self, oid: int) -> bool:
        return oid in self.store

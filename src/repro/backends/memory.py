"""In-memory dict backend — the wall-clock upper bound.

Stores records in a plain ``dict`` with no serialization, paging or
caching, so its latencies are the floor any real engine is measured
against: the difference between a backend's percentiles and the memory
backend's is the cost of that engine's storage machinery.

Records pass through :func:`~repro.store.serializer.encode_object` once
at ingest purely as *validation* (oversized reference lists are rejected
exactly like everywhere else), then the decoded record object itself is
kept; reads hand back defensive-copy-free references, which is precisely
what an "ideal" object cache would do.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence

from repro.backends.base import Backend
from repro.errors import StorageError, UnknownObject
from repro.store.serializer import StoredObject, encode_object
from repro.store.storage import stage_bulk_load

__all__ = ["MemoryBackend"]


class MemoryBackend(Backend):
    """Dict-of-records engine; everything is O(1) and unaccounted."""

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._objects: Dict[int, StoredObject] = {}
        self._bytes = 0

    # -- lifecycle ------------------------------------------------------ #

    def bulk_load(self, records: Iterable[StoredObject],
                  order: Optional[Sequence[int]] = None) -> int:
        if self._objects:
            raise StorageError("bulk_load requires an empty backend")
        sequence = stage_bulk_load(records, order)
        for record in sequence:
            self._bytes += len(encode_object(record))  # Validation + sizing.
        self._objects = {record.oid: record for record in sequence}
        return len(self._objects)

    def read_object(self, oid: int, lazy: bool = False) -> StoredObject:
        # ``lazy`` is accepted for surface compatibility but meaningless
        # here: the dict already holds decoded records, so there is no
        # decode to defer (and none to count).
        try:
            record = self._objects[oid]
        except KeyError:
            raise UnknownObject(oid) from None
        self.object_accesses += 1
        return record

    def write_object(self, record: StoredObject) -> None:
        if record.oid not in self._objects:
            raise UnknownObject(record.oid)
        self.object_accesses += 1
        self._bytes += len(encode_object(record)) - \
            self._objects[record.oid].size
        self._objects[record.oid] = record

    def insert_object(self, record: StoredObject) -> None:
        if record.oid in self._objects:
            raise StorageError(f"oid {record.oid} already exists")
        self.object_accesses += 1
        self._bytes += len(encode_object(record))
        self._objects[record.oid] = record

    def delete_object(self, oid: int) -> None:
        try:
            record = self._objects.pop(oid)
        except KeyError:
            raise UnknownObject(oid) from None
        self.object_accesses += 1
        self._bytes -= record.size

    def drop_caches(self) -> bool:
        """No cache to drop — the dict *is* the store.  Reports ``False``
        so harnesses know a "cold" run on this engine never starts cold."""
        return False

    def stats(self) -> Dict[str, object]:
        return {"objects": len(self._objects),
                "encoded_bytes": self._bytes,
                "object_accesses": self.object_accesses,
                "records_decoded": self.records_decoded,
                "decodes_avoided": self.decodes_avoided}

    def close(self) -> None:
        self._objects.clear()
        self._bytes = 0

    # -- accounting surface --------------------------------------------- #

    @property
    def object_count(self) -> int:
        return len(self._objects)

    def iter_oids(self) -> Iterator[int]:
        return iter(self._objects)

    def current_order(self) -> list:
        """Insertion order — dicts preserve it, so this *is* the placement."""
        return list(self._objects)

    def __contains__(self, oid: int) -> bool:
        return oid in self._objects

"""Pluggable storage backends: run the OCB workload against real engines.

The package ships three built-in engines, registered under the names the
CLI and the benchmark facade resolve (``ocb backends`` lists them):

========== ==================================================== ==========
name       engine                                               metrics
========== ==================================================== ==========
simulated  the Texas-like cost-model store (the default)        simulated
           — page faults, buffer hits, swizzling, sim clock     + wall
memory     plain dict, no serialization — the latency floor     wall only
sqlite     serialized objects in an indexed SQLite table with   wall only
           configurable page/cache pragmas
sharded-   oid-residue partitioning over N independent SQLite   wall only
sqlite     files with per-worker home-shard affinity
pipelined- single SQLite file whose batched reads split into    wall only
sqlite     pooled sub-batches executed concurrently
========== ==================================================== ==========

Adding an engine is two steps: subclass
:class:`~repro.backends.base.Backend`, then
:func:`~repro.backends.registry.register_backend` a factory.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import Backend
from repro.backends.memory import MemoryBackend
from repro.backends.registry import (
    KNOWN_CAPABILITIES,
    BackendInfo,
    available_backends,
    backend_info,
    backend_names,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.backends.pipelined import PipelinedSQLiteBackend
from repro.backends.sharded import ShardedSQLiteBackend
from repro.backends.simulated import SimulatedBackend
from repro.backends.sqlite import SQLiteBackend
from repro.store.storage import StoreConfig

__all__ = [
    "Backend",
    "BackendInfo",
    "KNOWN_CAPABILITIES",
    "SimulatedBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "ShardedSQLiteBackend",
    "PipelinedSQLiteBackend",
    "available_backends",
    "backend_info",
    "backend_names",
    "create_backend",
    "register_backend",
    "unregister_backend",
    "resolve_backend",
]


def _make_simulated(store_config: StoreConfig, **options: object) -> Backend:
    return SimulatedBackend(store_config=store_config)


def _make_memory(store_config: StoreConfig, **options: object) -> Backend:
    return MemoryBackend()


def _make_sqlite(store_config: StoreConfig, **options: object) -> Backend:
    path = str(options.pop("path", ":memory:"))
    kwargs = {"page_size": store_config.page_size,
              "cache_pages": store_config.buffer_pages}
    if store_config.journal_mode is not None:
        kwargs["journal_mode"] = store_config.journal_mode
    if store_config.busy_timeout_ms is not None:
        kwargs["busy_timeout_ms"] = store_config.busy_timeout_ms
    kwargs.update(options)  # type: ignore[arg-type]
    return SQLiteBackend(path=path, **kwargs)  # type: ignore[arg-type]


register_backend(
    "simulated", _make_simulated,
    "Texas-like cost-model store (simulated I/O + wall clock)",
    wall_clock_only=False, capabilities=("clustering", "cold-cache"),
    overwrite=True)
register_backend(
    "memory", _make_memory,
    "dict-based upper bound (no serialization, wall clock only)",
    overwrite=True)
def _make_sharded(store_config: StoreConfig, **options: object) -> Backend:
    path = options.pop("path", None)
    kwargs = {"page_size": store_config.page_size,
              "cache_pages": store_config.buffer_pages}
    if store_config.journal_mode is not None:
        kwargs["journal_mode"] = store_config.journal_mode
    if store_config.busy_timeout_ms is not None:
        kwargs["busy_timeout_ms"] = store_config.busy_timeout_ms
    kwargs.update(options)  # type: ignore[arg-type]
    return ShardedSQLiteBackend(
        path=None if path is None else str(path),
        **kwargs)  # type: ignore[arg-type]


register_backend(
    "sqlite", _make_sqlite,
    "serialized objects in an indexed SQLite table (wall clock only)",
    capabilities=("batched-reads", "cold-cache", "concurrent", "ref_index"),
    overwrite=True)
register_backend(
    "sharded-sqlite", _make_sharded,
    "oid-residue sharding over N SQLite files (home-shard affinity)",
    capabilities=("batched-reads", "cold-cache", "concurrent", "sharded",
                  "ref_index", "pipelined"),
    overwrite=True)


def _make_pipelined(store_config: StoreConfig, **options: object) -> Backend:
    path = str(options.pop("path", ":memory:"))
    kwargs = {"page_size": store_config.page_size,
              "cache_pages": store_config.buffer_pages}
    if store_config.journal_mode is not None:
        kwargs["journal_mode"] = store_config.journal_mode
    if store_config.busy_timeout_ms is not None:
        kwargs["busy_timeout_ms"] = store_config.busy_timeout_ms
    kwargs.update(options)  # type: ignore[arg-type]
    return PipelinedSQLiteBackend(path=path, **kwargs)  # type: ignore[arg-type]


register_backend(
    "pipelined-sqlite", _make_pipelined,
    "single SQLite file, batched reads split across a connection pool",
    capabilities=("batched-reads", "cold-cache", "concurrent", "ref_index",
                  "pipelined"),
    overwrite=True)


def resolve_backend(backend: "str | Backend | None",
                    store_config: Optional[StoreConfig] = None,
                    **options: object) -> Backend:
    """Accept a name, a ready instance, or ``None`` (→ simulated)."""
    if backend is None:
        backend = "simulated"
    if isinstance(backend, Backend):
        return backend
    return create_backend(backend, store_config, **options)

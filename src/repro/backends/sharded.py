"""Sharded SQLite backend — N independent files, one writer lane each.

The single-file SQLite engine serializes every writer on one WAL lock;
past ~2 concurrent writers the write-heavy scenarios plateau while busy
retries climb.  This engine breaks that ceiling by partitioning the oid
space across ``shards`` independent SQLite database files with the same
residue-class function the scenario layer uses to partition clients
(:func:`shard_of`, ``oid % shards`` — compare
``ClientExecutor._owns``'s ``oid % total_clients``).  Run with
``shards == clients`` a worker's *home shard* is exactly its mutation
lane: every partitioned write lands in a file no other worker writes,
so lock collisions — and their counted backoff sleeps — collapse.

The engine implements the full :class:`~repro.backends.base.Backend`
protocol by fan-out over per-shard :class:`SQLiteBackend` instances:

* :meth:`read_many` / :meth:`write_many` group oids by shard and issue
  one ``IN``-clause / ``executemany`` batch per *touched* shard, the
  home shard first;
* :meth:`traverse_refs_many` answers each shard's slice through that
  shard's link index (``ref_index`` is on by default here) and counts
  frontier edges that leave the home shard as ``remote_reads``;
* :meth:`bulk_load` stages once, partitions, and loads each shard
  (the parallel coordinator loads the shard files concurrently — see
  :meth:`repro.parallel.runner.ParallelRunner._load_shared`).

Shard placement is itself a measured variable, in the spirit of
Darmont's clustering-evaluation methodology: :meth:`stats` reports
``remote_reads`` (operations and frontier edges routed off the home
shard), ``remote_writes`` (mutations routed off it — zero on a
perfectly partitioned mix) and ``cross_shard_refs`` (graph edges whose
endpoints live in different shards, independent of any home).

``path`` semantics differ from the single-file engine: ``None`` (or
``":memory:"``) keeps every shard in memory — private to this process,
fine for equivalence tests; a directory path materialises
``shard-00.db`` … ``shard-NN.db`` files inside it, which is what the
process-parallel harness shares.  ``connect_worker`` then hands each
worker an independent connection *set*, opened home-shard-first.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.backends.base import Backend, ReadHandle
from repro.backends.pool import ConnectionPool, DeferredHandle, InflightGauge
from repro.backends.sqlite import SQLiteBackend, _MAX_BATCH_VARIABLES
from repro.errors import BackendError, StorageError, UnknownObject
from repro.obs import trace
from repro.store.costs import DEFAULT_PAGE_SIZE
from repro.store.serializer import StoredObject, decode_object, \
    decode_object_lazy, decode_refs
from repro.store.storage import stage_bulk_load

__all__ = ["ShardedSQLiteBackend", "shard_of", "DEFAULT_SHARDS"]

#: Default shard count (matches the classic 4-client OCB multi-user run).
DEFAULT_SHARDS = 4

#: File name of shard *index* inside the engine's directory.
SHARD_FILE_FORMAT = "shard-{index:02d}.db"


def shard_of(oid: int, shards: int) -> int:
    """The shard-function contract: ``oid % shards``.

    Deliberately identical to the residue-class partitioning the
    scenario layer applies to clients (``oid % total_clients``), so a
    run with ``shards == clients`` aligns every client's mutation lane
    with one shard — the alignment the affinity metrics measure.
    """
    return oid % shards


class ShardedSQLiteBackend(Backend):
    """Oid-residue partitioning over independent SQLite files."""

    name = "sharded-sqlite"
    supports_batched_reads = True
    supports_batched_writes = True
    supports_concurrent_access = True

    def __init__(self, path: Optional[str] = None,
                 shards: int = DEFAULT_SHARDS,
                 home_shard: Optional[int] = None,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 cache_pages: int = 128,
                 synchronous: str = "OFF",
                 journal_mode: str = "MEMORY",
                 busy_timeout_ms: int = SQLiteBackend.DEFAULT_BUSY_TIMEOUT_MS,
                 ref_index: bool = True,
                 concurrent_fanout: bool = False,
                 pool_size: int = 2) -> None:
        super().__init__()
        shards = int(shards)
        if shards < 1:
            raise BackendError(f"shards must be >= 1, got {shards}")
        if path in (None, "", ":memory:"):
            path = None
        else:
            path = str(path)
        if home_shard is not None:
            home_shard = int(home_shard)
            if not 0 <= home_shard < shards:
                raise BackendError(
                    f"home_shard must be in [0, {shards}), got {home_shard}")
        self.path = path
        self.shards = shards
        self.home_shard = home_shard
        self.page_size = page_size
        self.cache_pages = cache_pages
        self.synchronous = synchronous
        self.journal_mode = journal_mode
        self.busy_timeout_ms = busy_timeout_ms
        self.ref_index = bool(ref_index)
        self.supports_ref_index = self.ref_index
        #: Reads (and traverse lookups) routed to a non-home shard, plus
        #: traversal frontier edges leaving the home shard.  Only counted
        #: when the engine has a home shard (worker connections do).
        self.remote_reads = 0
        #: Mutations routed to a non-home shard — zero when the workload
        #: partition and the shard function are aligned.
        self.remote_writes = 0
        #: Graph edges whose endpoints live in different shards —
        #: placement quality, independent of any home shard.
        self.cross_shard_refs = 0
        #: Shards with an uncommitted write batch.  Normally empty —
        #: every mutation commits its shard immediately (see
        #: :meth:`_commit_shard`) — so :meth:`flush` touches nothing
        #: instead of paying ``shards`` no-op commit round trips per
        #: operation (the session flushes after every op).
        self._dirty_shards: set = set()
        #: Requested concurrent per-shard read fan-out.  Effective only
        #: for directory-backed multi-shard engines: in-memory shards
        #: cannot serve a second (pooled) connection, and one shard has
        #: nothing to overlap — both degrade to the sequential path
        #: with the honest counters (peaks stay at 1).
        self.concurrent_fanout = bool(concurrent_fanout)
        if pool_size < 1:
            raise BackendError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = int(pool_size)
        self._fanout_enabled = (self.concurrent_fanout
                                and path is not None and shards > 1)
        self.supports_async_reads = self._fanout_enabled
        self._pools: List[Optional[ConnectionPool]] = [None] * shards
        self._executor: Optional[ThreadPoolExecutor] = None
        self._inflight = InflightGauge()
        #: Peak read batches submitted as one concurrent group — equals
        #: the touched-shard count of the widest fan-out (1 sequential).
        self.concurrent_batches = 0
        if self.path is not None:
            os.makedirs(self.path, exist_ok=True)
        # Open connections home-shard-first: a worker's affinity shard is
        # the first member of its connection set.
        engines: Dict[int, SQLiteBackend] = {}
        self.connection_order = tuple(self._fanout_order(range(shards)))
        for shard in self.connection_order:
            engines[shard] = SQLiteBackend(
                path=self.shard_path(shard),
                page_size=page_size,
                cache_pages=cache_pages,
                synchronous=synchronous,
                journal_mode=journal_mode,
                busy_timeout_ms=busy_timeout_ms,
                ref_index=self.ref_index)
        self._engines: List[SQLiteBackend] = [engines[shard]
                                              for shard in range(shards)]

    # -- routing -------------------------------------------------------- #

    def shard_path(self, shard: int) -> str:
        """Storage location of shard *shard* (``":memory:"`` when private)."""
        if self.path is None:
            return ":memory:"
        return os.path.join(self.path, SHARD_FILE_FORMAT.format(index=shard))

    def shard_of(self, oid: int) -> int:
        """Which shard stores *oid* (see the module-level contract)."""
        return shard_of(oid, self.shards)

    def _engine_for(self, oid: int) -> SQLiteBackend:
        return self._engines[self.shard_of(oid)]

    def _fanout_order(self, shard_ids: Iterable[int]) -> List[int]:
        """Touched shards in visit order: home first, then ascending."""
        ordered = sorted(set(shard_ids))
        if self.home_shard is not None and self.home_shard in ordered:
            ordered.remove(self.home_shard)
            ordered.insert(0, self.home_shard)
        return ordered

    def _group_by_shard(self, oids: Sequence[int]) -> Dict[int, List[int]]:
        groups: Dict[int, List[int]] = {}
        for oid in oids:
            groups.setdefault(self.shard_of(oid), []).append(oid)
        return groups

    def _count_remote_read(self, shard: int, amount: int = 1) -> None:
        if self.home_shard is not None and shard != self.home_shard:
            self.remote_reads += amount

    def _count_remote_write(self, shard: int, amount: int = 1) -> None:
        if self.home_shard is not None and shard != self.home_shard:
            self.remote_writes += amount

    # -- concurrent fan-out --------------------------------------------- #

    def _pool_for(self, shard: int) -> ConnectionPool:
        pool = self._pools[shard]
        if pool is None:
            pool = ConnectionPool(
                self._engines[shard]._open_read_connection,
                size=self.pool_size,
                name=SHARD_FILE_FORMAT.format(index=shard))
            self._pools[shard] = pool
        return pool

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.shards,
                thread_name_prefix="ocb-shard-read")
        return self._executor

    def _fetch_shard(self, shard: int, oids: Sequence[int],
                     lazy: bool) -> Tuple[Dict[int, StoredObject], int]:
        """One shard's read slice, on a pooled connection.

        Runs on an executor thread; SQLite's C calls release the GIL, so
        slices genuinely overlap.  Records are decoded in-task — one
        shard's decode overlaps another shard's I/O.  Counters are *not*
        touched here: the collect side folds the returned round-trip
        count on the coordinator thread, keeping every counter
        single-threaded.
        """
        started = time.perf_counter() if trace.enabled else 0.0
        decode = decode_object_lazy if lazy else decode_object
        records: Dict[int, StoredObject] = {}
        round_trips = 0
        with self._pool_for(shard).acquire() as conn:
            for start in range(0, len(oids), _MAX_BATCH_VARIABLES):
                chunk = oids[start:start + _MAX_BATCH_VARIABLES]
                placeholders = ",".join("?" * len(chunk))
                round_trips += 1
                for oid, data in conn.execute(
                        f"SELECT oid, data FROM objects "
                        f"WHERE oid IN ({placeholders})", chunk):
                    records[oid] = decode(data)
        if trace.enabled:
            trace.emit("pool.read", time.perf_counter() - started,
                       shard=shard, oids=len(oids))
        return records, round_trips

    def _fetch_shard_refs(self, shard: int, oids: Sequence[int]
                          ) -> Tuple[Dict[int, Tuple[int, ...]], int]:
        """One shard's structure-only slice (see :meth:`_fetch_shard`)."""
        started = time.perf_counter() if trace.enabled else 0.0
        refs: Dict[int, Tuple[int, ...]] = {}
        round_trips = 0
        with self._pool_for(shard).acquire() as conn:
            for start in range(0, len(oids), _MAX_BATCH_VARIABLES):
                chunk = oids[start:start + _MAX_BATCH_VARIABLES]
                placeholders = ",".join("?" * len(chunk))
                round_trips += 1
                for oid, data in conn.execute(
                        f"SELECT oid, data FROM objects "
                        f"WHERE oid IN ({placeholders})", chunk):
                    refs[oid] = decode_refs(data)
        if trace.enabled:
            trace.emit("pool.read", time.perf_counter() - started,
                       shard=shard, oids=len(oids), structure_only=True)
        return refs, round_trips

    def submit_read_many(self, oids: Sequence[int],
                         lazy: bool = False) -> "ReadHandle | DeferredHandle":
        """Put every touched shard's ``IN``-clause read in flight at once.

        Sequential engines get the base behaviour (execute now).  With
        fan-out enabled, one :meth:`_fetch_shard` task per touched shard
        is submitted to the executor simultaneously; the returned
        handle's ``result()`` collects the slices in fan-out order
        (home shard first) and folds every counter — per-shard
        round trips and decodes into the shard engines, remote-read
        routing into this engine — exactly as the sequential path would
        have, so ``stats()`` stays comparable across modes.
        """
        if not self._fanout_enabled:
            return ReadHandle(self.read_many(oids, lazy=lazy))
        started = time.perf_counter() if trace.enabled else 0.0
        unique: List[int] = list(dict.fromkeys(oids))
        if self._dirty_shards:
            self.flush()  # Publish buffered writes to the pooled readers.
        groups = self._group_by_shard(unique)
        order = self._fanout_order(groups)
        executor = self._ensure_executor()
        self._inflight.enter(len(order))
        self.concurrent_batches = max(self.concurrent_batches, len(order))
        futures = {shard: executor.submit(self._fetch_shard, shard,
                                          groups[shard], lazy)
                   for shard in order}

        def collect() -> Dict[int, StoredObject]:
            fetched: Dict[int, StoredObject] = {}
            outstanding = len(order)
            try:
                for shard in order:
                    records, round_trips = futures[shard].result()
                    self._inflight.exit()
                    outstanding -= 1
                    self._fold_shard_read(shard, groups[shard], records,
                                          round_trips, lazy)
                    fetched.update(records)
            finally:
                if outstanding:
                    self._inflight.exit(outstanding)
            self.object_accesses += len(unique)
            if trace.enabled:
                trace.emit("sharded.read_many",
                           time.perf_counter() - started,
                           oids=len(unique), shards=len(groups),
                           concurrent=True)
            return {oid: fetched[oid] for oid in unique}

        return DeferredHandle(collect)

    def submit_traverse_refs_many(self, oids: Sequence[int]
                                  ) -> "ReadHandle | DeferredHandle":
        """Structure-only fan-out, all touched shards in flight at once."""
        if not self._fanout_enabled:
            return ReadHandle(self.traverse_refs_many(oids))
        started = time.perf_counter() if trace.enabled else 0.0
        unique: List[int] = list(dict.fromkeys(oids))
        if self._dirty_shards:
            self.flush()
        groups = self._group_by_shard(unique)
        order = self._fanout_order(groups)
        executor = self._ensure_executor()
        self._inflight.enter(len(order))
        self.concurrent_batches = max(self.concurrent_batches, len(order))
        futures = {shard: executor.submit(self._fetch_shard_refs, shard,
                                          groups[shard])
                   for shard in order}

        def collect() -> Dict[int, Tuple[int, ...]]:
            refs: Dict[int, Tuple[int, ...]] = {}
            outstanding = len(order)
            try:
                for shard in order:
                    answered, round_trips = futures[shard].result()
                    self._inflight.exit()
                    outstanding -= 1
                    self._fold_shard_refs(shard, groups[shard], answered,
                                          round_trips)
                    refs.update(answered)
            finally:
                if outstanding:
                    self._inflight.exit(outstanding)
            self.object_accesses += len(unique)
            self._account_edges(refs)
            if trace.enabled:
                trace.emit("sharded.traverse_refs_many",
                           time.perf_counter() - started,
                           oids=len(unique), shards=len(groups),
                           concurrent=True)
            return {oid: refs[oid] for oid in unique}

        return DeferredHandle(collect)

    def _fold_shard_read(self, shard: int, expected: Sequence[int],
                         records: Dict[int, StoredObject],
                         round_trips: int, lazy: bool) -> None:
        """Coordinator-side counter folding for one collected slice —
        the same accounting the shard engine's own ``read_many`` does."""
        engine = self._engines[shard]
        engine.sql_round_trips += round_trips
        if lazy:
            engine.decodes_avoided += len(records)
        else:
            engine.records_decoded += len(records)
        if len(records) != len(expected):
            missing = next(oid for oid in expected if oid not in records)
            raise UnknownObject(missing)
        engine.object_accesses += len(expected)
        self._count_remote_read(shard, len(expected))

    def _fold_shard_refs(self, shard: int, expected: Sequence[int],
                         refs: Dict[int, Tuple[int, ...]],
                         round_trips: int) -> None:
        engine = self._engines[shard]
        engine.sql_round_trips += round_trips
        if len(refs) != len(expected):
            missing = next(oid for oid in expected if oid not in refs)
            raise UnknownObject(missing)
        engine.object_accesses += len(expected)
        engine.decodes_avoided += len(expected)
        self._count_remote_read(shard, len(expected))

    # -- lifecycle ------------------------------------------------------ #

    def bulk_load(self, records: Iterable[StoredObject],
                  order: Optional[Sequence[int]] = None) -> int:
        if self.object_count:
            raise StorageError("bulk_load requires an empty backend")
        sequence = stage_bulk_load(records, order)
        partitions: List[List[StoredObject]] = [[] for _ in
                                                range(self.shards)]
        for record in sequence:
            partitions[self.shard_of(record.oid)].append(record)
        units = 0
        for shard in self.connection_order:
            units += self._engines[shard].bulk_load(partitions[shard])
        return units

    def read_object(self, oid: int, lazy: bool = False) -> StoredObject:
        shard = self.shard_of(oid)
        record = self._engines[shard].read_object(oid, lazy=lazy)
        self.object_accesses += 1
        self._count_remote_read(shard)
        return record

    def read_many(self, oids: Sequence[int],
                  lazy: bool = False) -> Dict[int, StoredObject]:
        """One ``IN``-clause batch per touched shard, home shard first.

        With :attr:`concurrent_fanout` enabled the touched shards'
        batches run simultaneously on pooled connections (see
        :meth:`submit_read_many`); the answer — and every counter — is
        identical either way.
        """
        if self._fanout_enabled:
            return self.submit_read_many(oids, lazy=lazy).result()
        started = time.perf_counter() if trace.enabled else 0.0
        unique: List[int] = list(dict.fromkeys(oids))
        groups = self._group_by_shard(unique)
        fetched: Dict[int, StoredObject] = {}
        for shard in self._fanout_order(groups):
            fetched.update(self._engines[shard].read_many(groups[shard],
                                                          lazy=lazy))
            self._count_remote_read(shard, len(groups[shard]))
        self.object_accesses += len(unique)
        if trace.enabled:
            trace.emit("sharded.read_many", time.perf_counter() - started,
                       oids=len(unique), shards=len(groups))
        # First-occurrence order, like the base-class contract.
        return {oid: fetched[oid] for oid in unique}

    def _commit_shard(self, shard: int) -> None:
        """Commit one shard's write batch immediately.

        Every mutation is a *local* per-shard transaction: holding one
        shard's write lock while acquiring another's is how concurrent
        workers deadlock (each backs off on a lock the other holds and
        busy retries never release anything), and no acquisition order
        fixes it because an operation's write set starts at its victim's
        shard.  A real sharded store makes the same trade — local
        commits instead of distributed two-phase locking — so locks are
        held for one statement, not one operation.
        """
        self._engines[shard].flush()
        self._dirty_shards.discard(shard)

    def write_object(self, record: StoredObject) -> None:
        shard = self.shard_of(record.oid)
        self._dirty_shards.add(shard)
        self._engines[shard].write_object(record)
        self._commit_shard(shard)
        self.object_accesses += 1
        self._count_remote_write(shard)

    def write_many(self, records: Sequence[StoredObject]) -> None:
        """One ``executemany`` batch per touched shard.

        Unlike the read paths, write fan-out visits shards in
        *ascending* order and commits each shard's batch before moving
        on (see :meth:`_commit_shard`): a global visit order plus
        statement-scoped locks keeps concurrent cross-shard write sets
        deadlock-free.
        """
        if not records:
            return
        started = time.perf_counter() if trace.enabled else 0.0
        groups: Dict[int, List[StoredObject]] = {}
        for record in records:
            groups.setdefault(self.shard_of(record.oid), []).append(record)
        for shard in sorted(groups):
            self._dirty_shards.add(shard)
            self._engines[shard].write_many(groups[shard])
            self._commit_shard(shard)
            self._count_remote_write(shard, len(groups[shard]))
        self.object_accesses += len(records)
        if trace.enabled:
            trace.emit("sharded.write_many", time.perf_counter() - started,
                       records=len(records), shards=len(groups))

    def insert_object(self, record: StoredObject) -> None:
        shard = self.shard_of(record.oid)
        self._dirty_shards.add(shard)
        self._engines[shard].insert_object(record)
        self._commit_shard(shard)
        self.object_accesses += 1
        self._count_remote_write(shard)

    def delete_object(self, oid: int) -> None:
        shard = self.shard_of(oid)
        self._dirty_shards.add(shard)
        self._engines[shard].delete_object(oid)
        self._commit_shard(shard)
        self.object_accesses += 1
        self._count_remote_write(shard)

    def traverse_refs(self, oid: int) -> Tuple[int, ...]:
        shard = self.shard_of(oid)
        refs = self._engines[shard].traverse_refs(oid)
        self.object_accesses += 1
        self._count_remote_read(shard)
        self._account_edges({oid: refs})
        return refs

    def traverse_refs_many(self, oids: Sequence[int]
                           ) -> Dict[int, Tuple[int, ...]]:
        """Each shard's slice through that shard's link index.

        Beyond the lookups themselves, every frontier edge that leaves
        the home shard is counted as a ``remote_reads`` unit — that edge
        is the next hop's off-shard fetch, which makes traversal
        locality visible before it is paid for.
        """
        if self._fanout_enabled:
            return self.submit_traverse_refs_many(oids).result()
        started = time.perf_counter() if trace.enabled else 0.0
        unique: List[int] = list(dict.fromkeys(oids))
        groups = self._group_by_shard(unique)
        refs: Dict[int, Tuple[int, ...]] = {}
        for shard in self._fanout_order(groups):
            refs.update(self._engines[shard].traverse_refs_many(
                groups[shard]))
            self._count_remote_read(shard, len(groups[shard]))
        self.object_accesses += len(unique)
        self._account_edges(refs)
        if trace.enabled:
            trace.emit("sharded.traverse_refs_many",
                       time.perf_counter() - started,
                       oids=len(unique), shards=len(groups))
        return {oid: refs[oid] for oid in unique}

    def _account_edges(self, refs: Dict[int, Tuple[int, ...]]) -> None:
        """Shard-crossing accounting for a batch of resolved references."""
        for src, targets in refs.items():
            src_shard = self.shard_of(src)
            for dst in targets:
                dst_shard = self.shard_of(dst)
                if dst_shard != src_shard:
                    self.cross_shard_refs += 1
                if self.home_shard is not None \
                        and src_shard == self.home_shard \
                        and dst_shard != self.home_shard:
                    self.remote_reads += 1

    # -- cache / durability --------------------------------------------- #

    def drop_caches(self) -> bool:
        dropped = [engine.drop_caches() for engine in self._engines]
        # Pooled read connections carry their own pager caches; recycle
        # them so a "cold" run is cold on every connection, not just the
        # shard engines' primary ones.
        for shard, pool in enumerate(self._pools):
            if pool is not None:
                pool.close()
                self._pools[shard] = None
        return all(dropped)

    def flush(self) -> int:
        """Commit any shard still holding a write batch (normally none)."""
        total = 0
        for shard in self._fanout_order(self._dirty_shards):
            total += self._engines[shard].flush()
            self._dirty_shards.discard(shard)
        return total

    def connect_worker(self, home_shard: Optional[int] = None
                       ) -> "ShardedSQLiteBackend":
        """An independent connection set to the same shard files.

        *home_shard* selects the new connection set's affinity shard
        (``None`` inherits this engine's); its connections open home
        first.  Only directory-backed engines can be shared — in-memory
        shards are private to their connections by construction.
        """
        if self.path is None:
            raise BackendError(
                "in-memory shards cannot be shared between connections; "
                "construct the engine with a directory path for "
                "concurrent runs")
        self.flush()  # Publish buffered writes to the sibling.
        return ShardedSQLiteBackend(
            path=self.path,
            shards=self.shards,
            home_shard=self.home_shard if home_shard is None else home_shard,
            page_size=self.page_size,
            cache_pages=self.cache_pages,
            synchronous=self.synchronous,
            journal_mode=self.journal_mode,
            busy_timeout_ms=self.busy_timeout_ms,
            ref_index=self.ref_index,
            concurrent_fanout=self.concurrent_fanout,
            pool_size=self.pool_size)

    # -- accounting surface --------------------------------------------- #

    @property
    def busy_retries(self) -> int:
        """Lock collisions retried, summed over every shard connection."""
        return sum(engine.busy_retries for engine in self._engines)

    @property
    def busy_wait_seconds(self) -> float:
        """Backoff sleep spent on locks, summed over every shard."""
        return sum(engine.busy_wait_seconds for engine in self._engines)

    @property
    def sql_round_trips(self) -> int:
        """SQL statements issued, summed over every shard."""
        return sum(engine.sql_round_trips for engine in self._engines)

    def stats(self) -> Dict[str, object]:
        shard_stats = [engine.stats() for engine in self._engines]
        return {
            "path": self.path if self.path is not None else ":memory:",
            "shards": self.shards,
            "home_shard": self.home_shard,
            "connection_order": list(self.connection_order),
            "page_size": shard_stats[0]["page_size"],
            "cache_pages": self.cache_pages,
            "journal_mode": shard_stats[0]["journal_mode"],
            "busy_timeout_ms": self.busy_timeout_ms,
            "ref_index": self.ref_index,
            "pages": sum(int(s["pages"]) for s in shard_stats),
            "objects": sum(int(s["objects"]) for s in shard_stats),
            "objects_per_shard": [int(s["objects"]) for s in shard_stats],
            "object_accesses": self.object_accesses,
            "records_decoded": sum(int(s["records_decoded"])
                                   for s in shard_stats),
            "decodes_avoided": sum(int(s["decodes_avoided"])
                                   for s in shard_stats),
            "sql_round_trips": self.sql_round_trips,
            "busy_retries": self.busy_retries,
            "busy_wait_seconds": self.busy_wait_seconds,
            "remote_reads": self.remote_reads,
            "remote_writes": self.remote_writes,
            "cross_shard_refs": self.cross_shard_refs,
            "concurrent_fanout": self.concurrent_fanout,
            "pool_size": self.pool_size,
            "concurrent_batches": self.concurrent_batches,
            "max_inflight_reads": self._inflight.peak,
            "pool_wait_seconds": sum(pool.wait_seconds
                                     for pool in self._pools
                                     if pool is not None),
            "pool_connections_opened": sum(pool.connections_opened
                                           for pool in self._pools
                                           if pool is not None),
            "sqlite_version": shard_stats[0]["sqlite_version"],
        }

    def reset_stats(self) -> None:
        super().reset_stats()
        self.remote_reads = 0
        self.remote_writes = 0
        self.cross_shard_refs = 0
        self.concurrent_batches = 0
        self._inflight.reset()
        for pool in self._pools:
            if pool is not None:
                pool.reset_stats()
        for engine in self._engines:
            engine.reset_stats()

    def close(self) -> None:
        for pool in self._pools:
            if pool is not None:
                pool.close()
        self._pools = [None] * self.shards
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for engine in self._engines:
            engine.close()

    @property
    def object_count(self) -> int:
        return sum(engine.object_count for engine in self._engines)

    def iter_oids(self) -> Iterator[int]:
        for engine in self._engines:
            yield from engine.iter_oids()

    def current_order(self) -> List[int]:
        """Canonical order across shards: global oid order."""
        return sorted(self.iter_oids())

    def oids_of_class(self, cid: int) -> Tuple[int, ...]:
        """Class-extent lookup, merged across shards in oid order."""
        merged: List[int] = []
        for engine in self._engines:
            merged.extend(engine.oids_of_class(cid))
        return tuple(sorted(merged))

    def __contains__(self, oid: int) -> bool:
        return oid in self._engine_for(oid)

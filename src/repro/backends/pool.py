"""Bounded connection pools — the concurrency substrate of the I/O layer.

OCB's traversal workloads are frontier-at-a-time: the kernel asks for a
whole batch of objects and the engine answers with one set-oriented
query.  Until now that answer was always *one* round trip on *one*
connection; this module provides the pieces that let an engine keep
several read statements in flight at once without giving up any of the
repo's accounting honesty:

* :class:`ConnectionPool` — at most ``size`` connections per database
  file, opened lazily on first demand, handed out through a
  context-managed :meth:`~ConnectionPool.acquire` that blocks when the
  pool is exhausted and *counts* the blocked time
  (``pool_wait_seconds``), so saturation is a reported metric instead
  of invisible latency (the same philosophy as the SQLite backend's
  counted busy retries).
* :class:`InflightGauge` — a thread-safe current/peak counter for
  outstanding read batches.  ``max_inflight_reads`` in an engine's
  ``stats()`` is this gauge's peak: the structural proof that batches
  genuinely overlapped, meaningful even on a 1-core host where
  wall-clock speedups are noise.
* :class:`DeferredHandle` — the pending half of the backends' optional
  submit/collect protocol (see
  :meth:`repro.backends.base.Backend.submit_read_many`): work is
  already scheduled when the handle is constructed; ``result()``
  collects it and folds the counters on the calling thread.

SQLite-specific care: pooled connections are opened by the engine's
factory with ``check_same_thread=False`` because the pool hands a
connection to one executor thread at a time, but to *different* threads
across acquires.  Exclusive hand-out is what makes that safe — a
connection is never used by two threads concurrently.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import BackendError
from repro.obs import trace

__all__ = ["ConnectionPool", "InflightGauge", "DeferredHandle"]


class InflightGauge:
    """Current/peak tracker for concurrently outstanding read batches.

    A batch counts as in flight from the moment it is submitted to an
    executor until its result has been collected and folded — the
    coordinator's honest view of outstanding I/O, deterministic under a
    given fan-out shape (a 3-shard fan-out peaks at 3 regardless of how
    the host schedules the threads).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.current = 0
        self.peak = 0

    def enter(self, amount: int = 1) -> None:
        with self._lock:
            self.current += amount
            if self.current > self.peak:
                self.peak = self.current

    def exit(self, amount: int = 1) -> None:
        with self._lock:
            self.current -= amount

    def reset(self) -> None:
        """Zero the peak (anything still in flight keeps counting)."""
        with self._lock:
            self.peak = self.current


class DeferredHandle:
    """A pending batched read: scheduled at construction, collected once.

    ``collect`` runs on the first :meth:`result` call (on the *calling*
    thread — counter folding stays single-threaded); the value is cached
    so repeated ``result()`` calls are free, matching
    :class:`concurrent.futures.Future` expectations.
    """

    __slots__ = ("_collect", "_done", "_value")

    def __init__(self, collect: Callable[[], object]) -> None:
        self._collect: Optional[Callable[[], object]] = collect
        self._done = False
        self._value: object = None

    def result(self) -> object:
        if not self._done:
            assert self._collect is not None
            self._value = self._collect()
            self._done = True
            self._collect = None
        return self._value


class ConnectionPool:
    """At most *size* lazily opened connections for one database file.

    ``factory`` opens one fresh connection; it is only invoked while a
    slot is reserved, and a factory failure releases the slot again, so
    a broken database file cannot leak capacity.  :meth:`acquire` is a
    context manager: the connection returns to the idle list on exit —
    **also on exception** — and :meth:`close` marks the pool closed,
    closes the idle connections, and then waits for every checked-out
    connection to come home (draining in-flight work) before returning.
    """

    def __init__(self, factory: Callable[[], object], size: int,
                 name: str = "") -> None:
        if size < 1:
            raise BackendError(f"pool size must be >= 1, got {size}")
        self._factory = factory
        self.size = int(size)
        self.name = name
        self._available = threading.Condition(threading.Lock())
        self._idle: List[object] = []
        self._opened = 0      # live connections (idle + checked out)
        self._checked_out = 0
        self._closed = False
        #: Total time acquirers spent blocked waiting for a slot.
        self.wait_seconds = 0.0
        #: Number of successful acquisitions.
        self.acquires = 0
        #: Connections ever opened (≤ acquires; lazy opening working).
        self.connections_opened = 0

    @contextmanager
    def acquire(self) -> Iterator[object]:
        started = time.perf_counter()
        conn: object = None
        fresh = False
        with self._available:
            while True:
                if self._closed:
                    raise BackendError(
                        f"connection pool {self.name or self.size!r} "
                        f"is closed")
                if self._idle:
                    conn = self._idle.pop()
                    break
                if self._opened < self.size:
                    # Reserve the slot before leaving the lock; the
                    # connection itself is opened outside it.
                    self._opened += 1
                    fresh = True
                    break
                self._available.wait()
            self._checked_out += 1
            waited = time.perf_counter() - started
            self.wait_seconds += waited
            self.acquires += 1
        if fresh:
            try:
                conn = self._factory()
            except BaseException:
                with self._available:
                    self._opened -= 1
                    self._checked_out -= 1
                    self._available.notify()
                raise
            with self._available:
                self.connections_opened += 1
        if trace.enabled:
            trace.emit("pool.acquire", waited,
                       pool=self.name, fresh=fresh)
        try:
            yield conn
        finally:
            with self._available:
                self._checked_out -= 1
                if self._closed:
                    self._opened -= 1
                    _close_quietly(conn)
                else:
                    self._idle.append(conn)
                self._available.notify()

    def close(self) -> None:
        """Refuse new acquires, close idle connections, drain in-flight.

        Connections currently checked out finish their work; each one is
        closed as it comes home, and this call blocks until the last has
        (crash-safe: an acquirer that died inside its ``with`` block has
        already returned its connection through the context manager).
        """
        with self._available:
            if self._closed:
                return
            self._closed = True
            while self._idle:
                self._opened -= 1
                _close_quietly(self._idle.pop())
            self._available.notify_all()
            while self._checked_out:
                self._available.wait()

    def stats(self) -> Dict[str, object]:
        with self._available:
            return {
                "size": self.size,
                "open_connections": self._opened,
                "in_use": self._checked_out,
                "acquires": self.acquires,
                "connections_opened": self.connections_opened,
                "pool_wait_seconds": self.wait_seconds,
            }

    def reset_stats(self) -> None:
        with self._available:
            self.wait_seconds = 0.0
            self.acquires = 0

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _close_quietly(conn: object) -> None:
    close = getattr(conn, "close", None)
    if close is None:
        return
    try:
        close()
    except Exception:
        pass
